// Package wal implements a write-ahead log with group commit and, when
// given a directory, real on-disk durability with crash recovery.
//
// The log is the engine's commit-durability point. Its latency model is the
// crux of the Madeus reproduction: a commit is durable only after an fsync,
// and an fsync is expensive relative to in-memory work. In group-commit mode
// every fsync covers all commit requests that arrived while the previous
// fsync was in flight, so N concurrent commits cost far fewer than N fsyncs
// (the paper's C'_c < C_c, Sec 4.5.2). In serial mode each commit pays a
// full fsync by itself — the behaviour the B-CON baseline is stuck with when
// it serializes commit propagation.
//
// With Options.Dir set the log is backed by append-only segment files of
// length-prefixed, CRC-checksummed frames (see format.go). Append buffers
// the encoded record in memory; the fsync at each group-commit boundary
// writes the buffered tail and calls File.Sync, so an acknowledged commit
// survives a kill -9 while unacknowledged work may not — exactly the
// contract recovery replays against. Open truncates a torn tail (a crash
// mid-write) back to the last whole record, Replay walks the durable
// prefix emitting committed transactions for the engine's redo pass, and
// Rotate lets the engine's checkpoint retire fully-captured segments so
// recovery work stays bounded. Disk failures surface as Commit errors and
// are sticky: a log that failed a write refuses further commits rather
// than acknowledging work it may have lost. Without a directory the log
// keeps the previous behaviour — records are counted, batching and
// ordering logic is real, durability is simulated by SyncDelay alone.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/fault"
	"madeus/internal/invariant"
	"madeus/internal/obs"
	"madeus/internal/simlat"
)

// Failpoint sites (armed only under -tags faultinject). wal.append and
// wal.fsync model latency faults (a Delay policy is a slow disk, a Hang
// policy a stalled device); error policies there are absorbed by design.
// wal.write is the durable write path: an injected error there tears the
// batch — half the buffered bytes reach the file, then the device fails —
// and the failure is sticky, like a real dying disk. wal.replay fails the
// recovery scan (a corrupt-media read). All sites are precomputed
// constants: invariantcall rejects site names built on the hot path.
const (
	faultAppend = "wal.append"
	faultFsync  = "wal.fsync"
	faultWrite  = "wal.write"
	faultReplay = "wal.replay"
)

// Process-wide observability: one engine process may host several logs (the
// in-process test clusters), so these aggregate across all of them; the
// per-log Stats remain the exact per-instance view.
var (
	obsFsyncs  = obs.NewCounter("wal.fsyncs", "simulated fsyncs performed")
	obsCommits = obs.NewCounter("wal.commits", "commit requests served")
	obsRecords = obs.NewCounter("wal.records", "records appended")
	obsBytes   = obs.NewCounter("wal.durable_bytes", "bytes made durable by fsyncs")
	obsBatch   = obs.NewHistogram("wal.batch_size", "commits covered by one fsync", obs.SizeBuckets())
)

// Mode selects how commits reach disk.
type Mode int

const (
	// GroupCommit batches concurrent commit requests into shared fsyncs.
	GroupCommit Mode = iota
	// SerialCommit gives every commit its own exclusive fsync.
	SerialCommit
)

func (m Mode) String() string {
	if m == SerialCommit {
		return "serial"
	}
	return "group"
}

// RecordKind tags a log record.
type RecordKind int

// Record kinds. The numeric values are part of the on-disk format; append
// new kinds at the end.
const (
	RecBegin RecordKind = iota
	RecInsert
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
	// RecDDL is a schema or catalog change (CREATE/DROP TABLE, INDEX,
	// DATABASE). DDL is non-transactional in the engine — applied
	// immediately, never rolled back — so replay applies a RecDDL at its
	// own LSN regardless of the surrounding transaction's outcome.
	RecDDL
)

// Record is one WAL entry. Data is the engine's rendering of the change:
// for write records a single self-contained SQL statement with literal
// values and primary-key predicates, so redo never re-evaluates a predicate
// against state the original execution did not see. LSN is assigned by
// Append: a strictly increasing log sequence number.
type Record struct {
	LSN   uint64
	TxnID uint64
	Kind  RecordKind
	DB    string
	Table string
	Data  string
}

// Options configures a Log.
type Options struct {
	// SyncDelay is the simulated portion of fsync latency, added on top
	// of any real disk time. Zero means no modeled delay.
	SyncDelay time.Duration
	// Mode selects group or serial commit.
	Mode Mode
	// RetainRecords keeps up to this many recent records in memory for
	// inspection (tests); 0 retains none.
	RetainRecords int
	// Dir, when non-empty, backs the log with append-only segment files
	// (Dir/wal-NNNNNN.log) and enables Replay. Empty keeps the log
	// in-memory.
	Dir string
}

// Stats reports accounting counters. Obtained via Log.Stats.
type Stats struct {
	Fsyncs   uint64 // number of fsyncs performed
	Commits  uint64 // number of commit requests served
	Records  uint64 // number of records appended
	MaxBatch int    // largest number of commits covered by one fsync
}

// Log is a write-ahead log shared by all tenants of one engine instance
// (the shared-process model: one transaction log per DBMS process, avoiding
// the per-tenant random log access of the VM-instance model).
type Log struct {
	opts Options

	records atomic.Uint64
	commits atomic.Uint64
	fsyncs  atomic.Uint64
	durable atomic.Uint64 // highest LSN the file (or simulation) has synced
	bytes   atomic.Uint64 // bytes written and synced

	//madeusvet:lockrank wal 50
	mu       sync.Mutex // serial mode fsync; also guards retained/maxBatch
	retained []Record
	maxBatch int

	// wmu guards the durable write path: the segment file handle, the
	// buffered tail awaiting the next fsync, and the sticky write error.
	// Ranked above mu so serial commits may flush while holding mu.
	//madeusvet:lockrank walfile 52
	wmu        sync.Mutex
	f          *os.File
	seq        int // current segment sequence number
	pending    []byte
	pendingLSN uint64              // LSN of the last buffered record
	openTxns   map[uint64]struct{} // txns with unresolved write records
	writeErr   error               // first write/sync failure; sticky

	reqs   chan chan error
	stop   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// segmentName renders the file name of segment seq.
func segmentName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// listSegments returns the dir's segment file names in sequence order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs) // zero-padded sequence numbers sort lexically
	return segs, nil
}

// segmentSeq parses the sequence number out of a segment file name.
func segmentSeq(name string) int {
	var seq int
	fmt.Sscanf(name, "wal-%06d.log", &seq)
	return seq
}

// New creates a log and, in group mode, starts its committer. It panics if
// Options.Dir is set and the file cannot be opened; durable callers should
// use Open and handle the error.
func New(opts Options) *Log {
	l, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("wal: %v", err))
	}
	return l
}

// Open creates a log. With Options.Dir set it opens the existing segment
// files (creating the first if none exist), truncates any torn tail back
// to the last whole record — a crash mid-write must not leave garbage in
// front of the scan — and restores the LSN counter so new records continue
// the sequence.
func Open(opts Options) (*Log, error) {
	l := &Log{
		opts: opts,
		reqs: make(chan chan error, 1024),
		stop: make(chan struct{}),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		segs, err := listSegments(opts.Dir)
		if err != nil {
			return nil, err
		}
		var maxLSN uint64
		for _, name := range segs {
			path := filepath.Join(opts.Dir, name)
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			validEnd, _, err := scanRecords(f, func(rec Record, _ int64) error {
				if rec.LSN > maxLSN {
					maxLSN = rec.LSN
				}
				return nil
			})
			if err == nil {
				err = f.Truncate(validEnd)
			}
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("wal: open %s: %w", name, err)
			}
		}
		l.seq = 1
		if len(segs) > 0 {
			l.seq = segmentSeq(segs[len(segs)-1])
		}
		f, err := os.OpenFile(filepath.Join(opts.Dir, segmentName(l.seq)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
		l.openTxns = make(map[uint64]struct{})
		l.records.Store(maxLSN)
		l.durable.Store(maxLSN)
		l.pendingLSN = maxLSN
	}
	if opts.Mode == GroupCommit {
		l.wg.Add(1)
		go l.committer()
	}
	return l, nil
}

// Append buffers a record, assigning its LSN. It does not sync: the record
// becomes durable at the next fsync (group-commit boundary or Sync call).
func (l *Log) Append(rec Record) {
	_ = fault.Inject(faultAppend)
	if l.opts.Dir != "" {
		// LSN assignment and buffer order must agree — the scan asserts
		// monotonic LSNs — so both happen under wmu.
		l.wmu.Lock()
		rec.LSN = l.records.Add(1)
		l.pending = encodeRecord(l.pending, rec)
		l.pendingLSN = rec.LSN
		if rec.TxnID != 0 {
			switch rec.Kind {
			case RecBegin, RecInsert, RecUpdate, RecDelete:
				l.openTxns[rec.TxnID] = struct{}{}
			case RecCommit, RecAbort:
				delete(l.openTxns, rec.TxnID)
			}
		}
		l.wmu.Unlock()
	} else {
		rec.LSN = l.records.Add(1)
	}
	obsRecords.Inc()
	if l.opts.RetainRecords > 0 {
		l.mu.Lock()
		if n := len(l.retained); n < l.opts.RetainRecords {
			if n > 0 {
				invariant.Assertf(rec.LSN > l.retained[n-1].LSN,
					"wal: LSN %d not monotonic (last retained %d)", rec.LSN, l.retained[n-1].LSN)
			}
			l.retained = append(l.retained, rec)
		}
		l.mu.Unlock()
	}
}

// AppendBatch buffers recs in order under a single lock acquisition,
// assigning consecutive LSNs. One statement touching many rows emits one
// batch instead of one lock round-trip per record, and every record is
// encoded back-to-back into the reusable pending buffer. Equivalent to
// calling Append on each record, only cheaper.
func (l *Log) AppendBatch(recs []Record) {
	if len(recs) == 0 {
		return
	}
	_ = fault.Inject(faultAppend)
	if l.opts.Dir != "" {
		l.wmu.Lock()
		for i := range recs {
			rec := &recs[i]
			rec.LSN = l.records.Add(1)
			l.pending = encodeRecord(l.pending, *rec)
			l.pendingLSN = rec.LSN
			if rec.TxnID != 0 {
				switch rec.Kind {
				case RecBegin, RecInsert, RecUpdate, RecDelete:
					l.openTxns[rec.TxnID] = struct{}{}
				case RecCommit, RecAbort:
					delete(l.openTxns, rec.TxnID)
				}
			}
		}
		l.wmu.Unlock()
	} else {
		for i := range recs {
			recs[i].LSN = l.records.Add(1)
		}
	}
	obsRecords.Add(uint64(len(recs)))
	if l.opts.RetainRecords > 0 {
		l.mu.Lock()
		for i := range recs {
			n := len(l.retained)
			if n >= l.opts.RetainRecords {
				break
			}
			if n > 0 {
				invariant.Assertf(recs[i].LSN > l.retained[n-1].LSN,
					"wal: LSN %d not monotonic (last retained %d)", recs[i].LSN, l.retained[n-1].LSN)
			}
			l.retained = append(l.retained, recs[i])
		}
		l.mu.Unlock()
	}
}

// Retained returns the retained record prefix (tests only).
func (l *Log) Retained() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.retained))
	copy(out, l.retained)
	return out
}

// Commit makes the calling transaction's records durable. It blocks until
// an fsync covering this commit completes, and returns the write error if
// the disk failed — the caller must not acknowledge the commit then.
func (l *Log) Commit() error {
	l.commits.Add(1)
	obsCommits.Inc()
	if l.opts.Mode == SerialCommit {
		l.mu.Lock()
		// Serial mode models an EXCLUSIVE fsync per commit — holding the
		// log mutex across it is the modeled cost (B-CON's baseline).
		//madeusvet:ignore lockdiscipline,holdblock serial mode holds the log mutex across the modeled fsync by design
		err := l.fsync()
		l.noteBatch(1)
		l.mu.Unlock()
		return err
	}
	done := make(chan error, 1)
	select {
	case l.reqs <- done:
	case <-l.stop:
		return fmt.Errorf("wal: log closed")
	}
	select {
	case err := <-done:
		return err
	case <-l.stop:
		return fmt.Errorf("wal: log closed")
	}
}

// committer is the group-commit loop: it takes the first pending commit,
// drains everything else already queued, performs one fsync, and acks the
// whole batch (propagating a disk failure to every covered commit).
// Requests arriving during the fsync form the next batch.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		var batch []chan error
		select {
		case first := <-l.reqs:
			batch = append(batch, first)
		case <-l.stop:
			return
		}
	drain:
		for {
			select {
			case next := <-l.reqs:
				batch = append(batch, next)
			default:
				break drain
			}
		}
		err := l.fsync()
		// Group-commit accounting invariants: a batch covers at least one
		// commit, and no fsync ever happens without a commit to cover —
		// the C'_c < C_c inequality the paper's Sec 4.5.2 rests on.
		invariant.Assertf(len(batch) >= 1, "wal: empty group-commit batch")
		invariant.Check(func() error {
			if f, c := l.fsyncs.Load(), l.commits.Load(); f > c {
				return fmt.Errorf("wal: %d fsyncs exceed %d commit requests", f, c)
			}
			return nil
		})
		l.noteBatch(len(batch))
		for _, done := range batch {
			done <- err
		}
	}
}

// fsync flushes the buffered tail to disk (durable mode) and models the
// sync latency. The returned error is the flush failure, if any; the
// latency site wal.fsync still absorbs injected errors (it models delay and
// hang faults only).
func (l *Log) fsync() error {
	l.wmu.Lock()
	err := l.flushLocked()
	l.wmu.Unlock()
	_ = fault.Inject(faultFsync)
	simlat.IO(l.opts.SyncDelay)
	l.fsyncs.Add(1)
	obsFsyncs.Inc()
	return err
}

// flushLocked writes the buffered records and syncs the segment file.
// Caller holds wmu. Failures are sticky: once a write or sync failed,
// every subsequent flush reports the original error, because records
// buffered after a lost write must never be acknowledged as durable.
func (l *Log) flushLocked() error {
	if l.writeErr != nil {
		return l.writeErr
	}
	if l.f == nil {
		// Simulated durability: everything appended so far is "synced".
		l.durable.Store(l.records.Load())
		return nil
	}
	if len(l.pending) == 0 {
		return nil
	}
	if err := fault.Inject(faultWrite); err != nil {
		// Torn-write policy: half the batch reaches the platter, then the
		// device dies. Open on restart truncates the torn tail; the
		// injected fault is the error the caller sees, not these writes'.
		if n := len(l.pending) / 2; n > 0 {
			_, _ = l.f.Write(l.pending[:n])
			_ = l.f.Sync()
		}
		l.pending = nil
		l.writeErr = err
		return err
	}
	n, err := l.f.Write(l.pending)
	if err == nil {
		err = l.f.Sync()
	}
	if err != nil {
		l.pending = nil
		l.writeErr = err
		return err
	}
	l.bytes.Add(uint64(n))
	obsBytes.Add(uint64(n))
	l.pending = l.pending[:0]
	l.durable.Store(l.pendingLSN)
	return nil
}

// Sync forces the buffered tail to disk outside any commit and returns the
// durable LSN. Used by the engine's checkpoint to pin "everything up to
// here is on disk" before recording the checkpoint LSN. It pays the sync
// latency but is not counted as a commit fsync (the Stats counters model
// commit-path accounting only).
func (l *Log) Sync() (uint64, error) {
	l.wmu.Lock()
	err := l.flushLocked()
	l.wmu.Unlock()
	simlat.IO(l.opts.SyncDelay)
	return l.durable.Load(), err
}

// Rotate closes the current segment and starts a new one. The engine's
// checkpoint calls it (with commits blocked and the tail synced) so the
// retired segments hold only records at or before the checkpoint LSN plus
// write records of still-open transactions. It returns the retired segment
// paths and whether deleting them is safe — true only when no transaction
// has unresolved write records, since those records live in the retired
// segments and a later commit would replay an incomplete transaction
// without them. When unsafe, the caller keeps the segments; replay skips
// their already-checkpointed units by LSN, so the only cost is scan time.
func (l *Log) Rotate() (retired []string, safeToDelete bool, err error) {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.f == nil {
		return nil, false, nil
	}
	if err := l.flushLocked(); err != nil {
		return nil, false, err
	}
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return nil, false, err
	}
	next, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(l.seq+1)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, err
	}
	l.f.Close()
	l.f = next
	l.seq++
	for _, name := range segs {
		if segmentSeq(name) < l.seq {
			retired = append(retired, filepath.Join(l.opts.Dir, name))
		}
	}
	return retired, len(l.openTxns) == 0, nil
}

// noteBatch records group-commit accounting for one fsync batch.
func (l *Log) noteBatch(n int) {
	invariant.Assertf(n >= 1, "wal: batch of %d commits noted", n)
	obsBatch.Observe(int64(n))
	if l.opts.Mode == SerialCommit {
		// mu already held by Commit.
		if n > l.maxBatch {
			l.maxBatch = n
		}
		return
	}
	l.mu.Lock()
	if n > l.maxBatch {
		l.maxBatch = n
	}
	l.mu.Unlock()
}

// Stats returns a snapshot of the accounting counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	mb := l.maxBatch
	l.mu.Unlock()
	return Stats{
		Fsyncs:   l.fsyncs.Load(),
		Commits:  l.commits.Load(),
		Records:  l.records.Load(),
		MaxBatch: mb,
	}
}

// AdvanceLSN raises the LSN sequence (and the durable watermark) to at
// least lsn. The engine's recovery calls it with the checkpoint LSN: when a
// checkpoint retired every segment, the on-disk log restarts empty, but new
// records must continue the global sequence — a record numbered below the
// checkpoint LSN would be skipped by the applied-LSN gate on the next
// recovery.
func (l *Log) AdvanceLSN(lsn uint64) {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.records.Load() < lsn {
		l.records.Store(lsn)
		l.pendingLSN = lsn
	}
	if l.durable.Load() < lsn {
		l.durable.Store(lsn)
	}
}

// DurableLSN returns the highest LSN guaranteed on disk.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// LastLSN returns the highest LSN assigned so far (durable or not).
func (l *Log) LastLSN() uint64 { return l.records.Load() }

// Close stops the committer and, in durable mode, flushes the buffered
// tail before closing the file — a graceful shutdown loses nothing.
// Pending commits fail with an error.
func (l *Log) Close() {
	l.closed.Do(func() {
		close(l.stop)
		l.wg.Wait()
		if l.opts.Dir != "" {
			l.wmu.Lock()
			// Best-effort: a flush failure is already sticky in writeErr
			// and the log is going away.
			_ = l.flushLocked()
			if l.f != nil {
				l.f.Close()
			}
			l.writeErr = fmt.Errorf("wal: log closed")
			l.wmu.Unlock()
		}
	})
}

// Crash simulates kill -9: the committer stops and the file closes WITHOUT
// flushing the buffered tail, losing every record since the last fsync —
// exactly what a power cut does to a page cache. Tests use it to exercise
// recovery; production shutdown is Close.
func (l *Log) Crash() {
	l.closed.Do(func() {
		close(l.stop)
		l.wg.Wait()
		l.wmu.Lock()
		l.pending = nil
		if l.f != nil {
			l.f.Close()
		}
		l.writeErr = fmt.Errorf("wal: log crashed")
		l.wmu.Unlock()
	})
}
