package flow

import "time"

// Watchdog aborts migrations that can no longer succeed: a whole-migration
// deadline, and a stall detector that fires when the slave makes no replay
// progress for a full window. Either verdict routes through the manager's
// rollback protocol (PR 3) — the alternative on seed code is Migrate
// hanging until its catch-up timeout while op-timeouts storm the logs.
//
// The manager drives it single-threaded from the Step-3 sampling loop:
// Observe with each progress sample, then Check.
type Watchdog struct {
	cfg         Config
	start       time.Time
	lastGain    time.Time
	lastApplied int
	bestDebt    int
	primed      bool
}

// NewWatchdog starts the clocks for one migration attempt.
func NewWatchdog(cfg Config, start time.Time) *Watchdog {
	return &Watchdog{cfg: cfg, start: start, lastGain: start}
}

// Observe feeds one progress sample: the primary slave's applied-syncset
// count and current debt. Progress means the slave applied something new
// or debt reached a new low — either resets the stall clock. Debt merely
// holding steady does not: a wedged slave with a paced (or idle) source
// holds debt flat forever, and that is exactly the hang the stall detector
// exists to break.
func (w *Watchdog) Observe(applied int, debt int, now time.Time) {
	if !w.primed {
		w.primed = true
		w.bestDebt = debt
		w.lastApplied = applied
		w.lastGain = now
		return
	}
	if applied > w.lastApplied || debt < w.bestDebt {
		w.lastGain = now
	}
	if applied > w.lastApplied {
		w.lastApplied = applied
	}
	if debt < w.bestDebt {
		w.bestDebt = debt
	}
}

// Check returns ErrDeadline or ErrStalled when a limit has been crossed,
// nil otherwise. Counters fire on the first detection only; the manager
// aborts on the first non-nil verdict so Check is effectively one-shot.
func (w *Watchdog) Check(now time.Time) error {
	if w.cfg.Deadline > 0 && now.Sub(w.start) >= w.cfg.Deadline {
		obsDeadlineAborts.Inc()
		return ErrDeadline
	}
	if w.cfg.StallWindow > 0 && w.primed && now.Sub(w.lastGain) >= w.cfg.StallWindow {
		obsStalls.Inc()
		return ErrStalled
	}
	return nil
}
