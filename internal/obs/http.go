package obs

import (
	"net/http"
	"strconv"
)

// Handler serves the registry and tracer over HTTP in the expvar style:
//
//	GET /debug/madeus            combined JSON (metrics + recent events)
//	GET /debug/madeus?events=N   cap the event tail at N (default 200)
//	GET /debug/madeus/text       plain-text metric dump
//
// Mount it with NewServeMux and http.Serve from cmd/madeusd's -debug flag;
// it holds no per-request state and is safe for concurrent use.
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/madeus", func(w http.ResponseWriter, req *http.Request) {
		n := 200
		if q := req.URL.Query().Get("events"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "obs: bad events count", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		// The client hanging up mid-write is its problem; nothing to do
		// with the error beyond not masking a partial write as success.
		_ = WriteJSON(w, r.Snapshot(), t.Last(n))
	})
	mux.HandleFunc("/debug/madeus/text", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteText(w, r.Snapshot())
	})
	return mux
}
