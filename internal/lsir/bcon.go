package lsir

import "sort"

// BConSchedule builds the slave schedule of the B-CON baseline (the rule of
// Daudjee and Salem [24], Sec 5.3.1): first reads and writes propagate
// concurrently exactly as Madeus does, but commits are emitted strictly one
// at a time in master commit (ETS) order — no commit ever shares a batch.
//
// B-CON's rule is strictly stronger than the LSIR: every schedule it
// produces satisfies the LSIR (the property-based tests verify this), which
// is why B-CON is correct but slower — it gives up the group-commit
// opportunity the LSIR's relaxation creates.
func BConSchedule(sets []Syncset) Schedule {
	bySTS := make(map[int][]Syncset)
	var stsList []int
	for _, ss := range sets {
		if _, ok := bySTS[ss.STS]; !ok {
			stsList = append(stsList, ss.STS)
		}
		bySTS[ss.STS] = append(bySTS[ss.STS], ss)
	}
	sort.Ints(stsList)

	var out []Op
	var pending []Syncset
	flushSerially := func(bound int) {
		sort.Slice(pending, func(i, j int) bool { return pending[i].ETS < pending[j].ETS })
		rest := pending[:0]
		for _, ss := range pending {
			if ss.ETS < bound {
				// One commit at a time, in exact master commit
				// order: a batch of size one, always.
				out = append(out, Op{Txn: ss.Txn, Kind: OpCommit})
			} else {
				rest = append(rest, ss)
			}
		}
		pending = rest
	}
	for gi, sts := range stsList {
		group := bySTS[sts]
		for _, ss := range group {
			if fr := ss.FirstRead(); fr != nil {
				out = append(out, *fr)
			}
		}
		for _, ss := range group {
			out = append(out, ss.Writes()...)
		}
		pending = append(pending, group...)
		bound := int(^uint(0) >> 1)
		if gi+1 < len(stsList) {
			bound = stsList[gi+1]
		}
		flushSerially(bound)
	}
	flushSerially(int(^uint(0) >> 1))
	return Schedule{Ops: out}
}
