package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders the registry snapshot as aligned "name value" lines.
// The error is the writer's — snapshot encoding must not silently drop it
// (the errdrop analyzer enforces this at call sites).
func WriteText(w io.Writer, snap []Metric) error {
	width := 0
	for _, m := range snap {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range snap {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, m.Name, m.Render()); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsText renders events one per line.
func WriteEventsText(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// DebugSnapshot is the JSON document the /debug/madeus endpoint serves:
// the full metric registry, the tail of the event ring, and (on processes
// running the history sampler) the per-tenant time series.
type DebugSnapshot struct {
	Metrics []Metric            `json:"metrics"`
	Events  []Event             `json:"events"`
	History map[string][]Sample `json:"history,omitempty"`
}

// WriteJSON renders a combined metrics+events snapshot as one JSON object.
func WriteJSON(w io.Writer, snap []Metric, events []Event) error {
	return WriteDebug(w, DebugSnapshot{Metrics: snap, Events: events})
}

// WriteDebug renders a full debug snapshot (metrics, events, history) as
// one JSON object.
func WriteDebug(w io.Writer, snap DebugSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}
