package sqlmini

import (
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM items")
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if !sel.Items[0].Star || sel.Table != "items" {
		t.Errorf("got %+v", sel)
	}
	if sel.Limit != -1 {
		t.Errorf("Limit = %d, want -1", sel.Limit)
	}
}

func TestParseSelectColumnsWhereOrderLimit(t *testing.T) {
	st := mustParse(t, "SELECT id, title FROM items WHERE cost > 10 AND stock <= 5 ORDER BY title DESC LIMIT 3")
	sel := st.(*Select)
	if len(sel.Items) != 2 || sel.Items[0].Column != "id" || sel.Items[1].Column != "title" {
		t.Errorf("items: %+v", sel.Items)
	}
	if sel.OrderBy != "title" || !sel.OrderDesc || sel.Limit != 3 {
		t.Errorf("order/limit: %+v", sel)
	}
	b, ok := sel.Where.(*Binary)
	if !ok || b.Op != OpAnd {
		t.Fatalf("where: %v", sel.Where)
	}
}

func TestParseSelectCount(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM orders WHERE status = 'open'")
	sel := st.(*Select)
	if sel.Items[0].Aggregate != "COUNT" {
		t.Errorf("got %+v", sel.Items[0])
	}
}

func TestParseSelectSum(t *testing.T) {
	st := mustParse(t, "SELECT SUM(qty) FROM order_line WHERE o_id = 7")
	sel := st.(*Select)
	if sel.Items[0].Aggregate != "SUM" || sel.Items[0].AggArg != "qty" {
		t.Errorf("got %+v", sel.Items[0])
	}
}

func TestParseSelectForShare(t *testing.T) {
	st := mustParse(t, "SELECT id FROM t WHERE id = 1 FOR SHARE")
	sel := st.(*Select)
	if !sel.ForShare {
		t.Error("ForShare not set")
	}
}

func TestParseInsertSingleRow(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x')")
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 1 {
		t.Fatalf("got %+v", ins)
	}
	lit := ins.Rows[0][1].(*Literal)
	if lit.Val.Str != "x" {
		t.Errorf("got %v", lit.Val)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a) VALUES (1), (2), (3)")
	ins := st.(*Insert)
	if len(ins.Rows) != 3 {
		t.Errorf("got %d rows", len(ins.Rows))
	}
}

func TestParseInsertArityMismatch(t *testing.T) {
	if _, err := Parse("INSERT INTO t (a, b) VALUES (1)"); err == nil {
		t.Error("want arity error")
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE items SET stock = stock - 1, cost = 2.5 WHERE id = 9")
	upd := st.(*Update)
	if upd.Table != "items" || len(upd.Set) != 2 {
		t.Fatalf("got %+v", upd)
	}
	if upd.Set[0].Column != "stock" {
		t.Errorf("got %+v", upd.Set[0])
	}
	if _, ok := upd.Set[0].Value.(*Binary); !ok {
		t.Errorf("want binary expr, got %T", upd.Set[0].Value)
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM cart WHERE c_id = 3")
	del := st.(*Delete)
	if del.Table != "cart" || del.Where == nil {
		t.Errorf("got %+v", del)
	}
}

func TestParseDeleteNoWhere(t *testing.T) {
	st := mustParse(t, "DELETE FROM cart")
	del := st.(*Delete)
	if del.Where != nil {
		t.Errorf("got %+v", del)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE items (id INT PRIMARY KEY, title TEXT, cost FLOAT, active BOOL)")
	ct := st.(*CreateTable)
	if ct.Table != "items" || len(ct.Columns) != 4 {
		t.Fatalf("got %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != KindInt {
		t.Errorf("pk col: %+v", ct.Columns[0])
	}
	if ct.Columns[2].Type != KindFloat || ct.Columns[3].Type != KindBool {
		t.Errorf("types: %+v", ct.Columns)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE INDEX items_title ON items (title)")
	ci := st.(*CreateIndex)
	if ci.Name != "items_title" || ci.Table != "items" || ci.Column != "title" {
		t.Errorf("got %+v", ci)
	}
	if _, err := Parse("CREATE INDEX ix ON t"); err == nil {
		t.Error("missing column list: want error")
	}
	if _, err := Parse("CREATE INDEX ON t (a)"); err == nil {
		t.Error("missing name: want error")
	}
}

func TestParseDropIndex(t *testing.T) {
	st := mustParse(t, "DROP INDEX ix ON items")
	di := st.(*DropIndex)
	if di.Name != "ix" || di.Table != "items" {
		t.Errorf("got %+v", di)
	}
	if _, err := Parse("DROP INDEX ix"); err == nil {
		t.Error("missing ON: want error")
	}
}

func TestParseDropTable(t *testing.T) {
	st := mustParse(t, "DROP TABLE items")
	if st.(*DropTable).Table != "items" {
		t.Errorf("got %+v", st)
	}
}

func TestParseTransactionControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
	if _, ok := mustParse(t, "ABORT").(*Rollback); !ok {
		t.Error("ABORT")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "BEGIN;")
	mustParse(t, "SELECT * FROM t;")
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := Parse("BEGIN BEGIN"); err == nil {
		t.Error("want error for trailing input")
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a = 1 + 2 * 3 OR b = 4 AND c = 5")
	sel := st.(*Select)
	// Expect OR at the top: (a = (1 + (2*3))) OR ((b=4) AND (c=5)).
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top: %v", sel.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR: %v", or.R)
	}
	eq := or.L.(*Binary)
	if eq.Op != OpEq {
		t.Fatalf("left of OR: %v", or.L)
	}
	add := eq.R.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("rhs of =: %v", eq.R)
	}
	if mul := add.R.(*Binary); mul.Op != OpMul {
		t.Fatalf("mul binds tighter: %v", add.R)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a = (1 + 2) * 3")
	sel := st.(*Select)
	eq := sel.Where.(*Binary)
	mul := eq.R.(*Binary)
	if mul.Op != OpMul {
		t.Fatalf("got %v", eq.R)
	}
	if add := mul.L.(*Binary); add.Op != OpAdd {
		t.Fatalf("got %v", mul.L)
	}
}

func TestParseNotAndNegation(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE NOT a = -1")
	sel := st.(*Select)
	n, ok := sel.Where.(*Not)
	if !ok {
		t.Fatalf("got %T", sel.Where)
	}
	eq := n.E.(*Binary)
	if _, ok := eq.R.(*Neg); !ok {
		t.Fatalf("got %T", eq.R)
	}
}

func TestParseNullTrueFalseLiterals(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a, b, c) VALUES (NULL, TRUE, FALSE)")
	ins := st.(*Insert)
	row := ins.Rows[0]
	if !row[0].(*Literal).Val.IsNull() {
		t.Error("NULL")
	}
	if !row[1].(*Literal).Val.Bool {
		t.Error("TRUE")
	}
	if row[2].(*Literal).Val.Bool {
		t.Error("FALSE")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FLY TO t",
		"SELECT FROM t",
		"SELECT * FORM t",
		"INSERT INTO t VALUES (1)",
		"UPDATE t",
		"CREATE TABLE t (a BLOB)",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): want error", sql)
		}
	}
}

// TestParseRoundTrip verifies String() output reparses to the same String().
func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"SELECT * FROM t",
		"SELECT id, name FROM users WHERE id = 42 ORDER BY name LIMIT 10",
		"SELECT COUNT(*) FROM t WHERE a = 'x''y'",
		"INSERT INTO t (a, b) VALUES (1, 'two'), (3, 'four')",
		"UPDATE t SET a = a + 1 WHERE b <> 2",
		"DELETE FROM t WHERE a >= 1.5",
		"CREATE TABLE t (id INT PRIMARY KEY, v TEXT)",
		"CREATE INDEX ix ON t (v)",
		"DROP INDEX ix ON t",
		"DROP TABLE t",
		"BEGIN", "COMMIT", "ROLLBACK",
	}
	for _, sql := range inputs {
		st1 := mustParse(t, sql)
		st2 := mustParse(t, st1.String())
		if st1.String() != st2.String() {
			t.Errorf("round trip %q: %q != %q", sql, st1.String(), st2.String())
		}
	}
}
