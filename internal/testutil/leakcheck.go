// Package testutil holds shared test helpers. Its centerpiece is the
// goroutine leak checker: the middleware's proxy/propagator/committer
// machinery spawns goroutines whose shutdown paths are exactly the code the
// goroleak analyzer polices statically — the leak checker verifies the same
// property dynamically, per test.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long a test's goroutines get to wind down before the
// checker declares a leak. Teardown is asynchronous (close → drain → exit),
// so the count is polled rather than sampled once.
const leakGrace = 5 * time.Second

// CheckGoroutines snapshots the goroutine count and registers a cleanup that
// fails the test if, after the grace period, more goroutines are running
// than at the snapshot. Call it FIRST in the test, before any servers or
// nodes are created, so their teardown runs (via later t.Cleanup
// registrations) before the comparison.
//
// On failure the checker dumps all goroutine stacks, filtered down to the
// ones mentioning this module, so the leaked site is identifiable.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		deadline := time.Now().Add(leakGrace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d running after test, %d at start\n%s",
			n, base, moduleStacks())
	})
}

// moduleStacks renders the stacks of goroutines that run this module's code,
// dropping runtime/testing noise.
func moduleStacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out strings.Builder
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "madeus/") {
			fmt.Fprintf(&out, "%s\n\n", g)
		}
	}
	if out.Len() == 0 {
		return string(buf)
	}
	return out.String()
}
