package bench

import (
	"context"
	"fmt"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wal"
)

// AblationHotpath isolates the per-tenant hot path work of this repo's
// sharding pass: striped MVCC state + row stripes, the parse cache, and
// batched WAL encoding, versus the unsharded single-mutex baseline
// (MVCCStripes=1, parse cache off, LegacyReads on — the pre-sharding
// configuration, reproducible because one stripe degenerates to one lock
// and LegacyReads restores the old copy-on-read, sort-per-scan read path).
//
// Two measurements per leg:
//
//   - Throughput: the paper's 700-EB heavy ordering mix driven at
//     in-process engine sessions with zero think time and zero simulated
//     CPU/fsync cost, so lock contention and per-statement parsing are the
//     bottleneck rather than the simulated hardware. This is deliberately
//     NOT a paper figure: it measures the middleware-visible engine hot
//     path, not the scaled testbed.
//   - Suspension: a Madeus migration under the normal calibrated heavy
//     load (same shape as fig7), to pin that the sharding pass leaves the
//     Step-4 suspension window unchanged.
func AblationHotpath(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: per-tenant hot path, 700-EB heavy ordering mix",
		Header: []string{"hot path", "ops/s", "speedup", "suspension"},
	}
	legs := []struct {
		name    string
		stripes int  // engine.Options.MVCCStripes
		pcache  int  // engine.Options.ParseCacheSize
		legacy  bool // engine.Options.LegacyReads
	}{
		{"legacy: 1 stripe, clone+sort reads, no cache", 1, -1, true},
		{"sharded: stripes + spine + cache", 0, 0, false}, // 0 = package defaults
	}
	var base float64
	for _, lg := range legs {
		ops, err := hotpathThroughput(cfg, lg.stripes, lg.pcache, lg.legacy)
		if err != nil {
			return nil, err
		}
		susp, err := hotpathSuspension(cfg, lg.stripes, lg.pcache, lg.legacy)
		if err != nil {
			return nil, err
		}
		speedup := "1.00x"
		if base == 0 {
			base = ops
		} else if base > 0 {
			speedup = fmt.Sprintf("%.2fx", ops/base)
		}
		t.AddRow(lg.name, fmt.Sprintf("%.0f", ops), speedup, fmtDur(susp))
	}
	t.Note("throughput leg: in-process sessions, think=0, no simulated CPU/fsync — engine hot path only")
	t.Note("suspension leg: calibrated fig7-style migration; striping must not move the Step-4 window")
	return t, nil
}

// hotpathThroughput measures successful TPC-W interactions per second
// against a single in-process engine configured with the given stripe and
// parse-cache knobs and none of the simulated hardware costs.
func hotpathThroughput(cfg Config, stripes, pcache int, legacy bool) (float64, error) {
	opts := cfg.engineOptions()
	opts.StmtCost = 0
	opts.ExecSlots = 0 // unbounded: the real lock contention is the subject
	opts.WAL = wal.Options{Mode: wal.GroupCommit}
	opts.MVCCStripes = stripes
	opts.ParseCacheSize = pcache
	opts.LegacyReads = legacy
	e := engine.New(opts)
	defer e.Close()
	if err := e.CreateDatabase("tenantA"); err != nil {
		return 0, err
	}
	loader, err := e.NewSession("tenantA")
	if err != nil {
		return 0, err
	}
	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	if err := tpcw.Load(loader, scale); err != nil {
		return 0, err
	}

	rec := metrics.NewRecorder()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Warm+cfg.Measure)
	defer cancel()
	err = tpcw.RunFleet(ctx, cfg.EBs(PaperHeavyEBs), tpcw.Ordering, scale, 0,
		func() (tpcw.Execer, error) { return e.NewSession("tenantA") }, rec)
	if err != nil {
		return 0, err
	}
	return rec.Summarize().Throughput, nil
}

// hotpathSuspension runs one Madeus migration under the calibrated heavy
// load with the leg's engine knobs and returns the Step-4 suspension
// window.
func hotpathSuspension(cfg Config, stripes, pcache int, legacy bool) (time.Duration, error) {
	mw, err := core.New(core.Options{Players: cfg.Players, CatchupTimeout: cfg.CatchupTimeout})
	if err != nil {
		return 0, err
	}
	nodeOpts := cfg.engineOptions()
	nodeOpts.MVCCStripes = stripes
	nodeOpts.ParseCacheSize = pcache
	nodeOpts.LegacyReads = legacy
	src, err := cluster.NewNode("node0", cluster.NodeOptions{Engine: nodeOpts})
	if err != nil {
		mw.Close()
		return 0, err
	}
	dst, err := cluster.NewNode("node1", cluster.NodeOptions{Engine: nodeOpts})
	if err != nil {
		src.Close()
		mw.Close()
		return 0, err
	}
	mw.AddNode(src)
	mw.AddNode(dst)
	h := &Harness{cfg: cfg, MW: mw, Nodes: []*cluster.Node{src, dst}}
	defer h.Close()

	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		return 0, err
	}
	rep, _, err := h.MigrateUnderLoad("tenantA", "node1", cfg.EBs(PaperHeavyEBs),
		tpcw.Ordering, scale, core.MigrateOptions{Strategy: core.Madeus})
	if err != nil {
		return 0, err
	}
	return rep.SuspensionWindow, nil
}
