package analysis

import (
	"bytes"
	"go/ast"
	"go/build/constraint"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// TagParity keeps the zero-overhead build-tag stubs honest: for every
// custom tag `t` that gates a file pair inside one package (one file
// `//go:build t`, a sibling `//go:build !t` — the `invariants` and
// `faultinject` layers), the exported surface of the two variants must be
// identical. A function added to the tagged variant but not the stub (or
// with a drifted signature) compiles fine in whichever build you test and
// then breaks the other — exactly the failure mode the tag-gated layers'
// "free when disabled" contract cannot tolerate.
//
// Compared per exported name: func/method signatures (rendered and
// whitespace-normalized), type declarations, and the kind plus explicit
// type of consts/vars. Const/var *values* may differ — `Enabled = true`
// versus `false` is the whole point of the pair. Files without a build
// constraint are shared by both variants and trivially in parity. The
// check is pure AST (tagged variants are never type-checked), so it also
// runs in loader degraded mode.
var TagParity = &Analyzer{
	Name: "tagparity",
	Doc:  "tag-gated file pairs must export identical names and signatures in tagged and no-tag variants",
	Run:  runTagParity,
}

func runTagParity(pass *Pass) {
	// Group this package's constrained files by gate tag and polarity.
	type variant struct {
		pos   map[string]*ast.File // gate tag -> file requiring it
		neg   map[string]*ast.File // gate tag -> file requiring its absence
	}
	v := variant{pos: make(map[string]*ast.File), neg: make(map[string]*ast.File)}

	classify := func(f *ast.File, expr constraint.Expr) {
		if expr == nil {
			return
		}
		for _, tag := range customTags(expr) {
			on := evalWithTag(expr, tag, true)
			off := evalWithTag(expr, tag, false)
			switch {
			case on && !off:
				v.pos[tag] = f
			case off && !on:
				v.neg[tag] = f
			}
		}
	}
	for _, f := range pass.Files {
		classify(f, pass.Constraints[f])
	}
	for _, tf := range pass.TaggedFiles {
		classify(tf.File, tf.Expr)
	}

	tags := make([]string, 0, len(v.pos))
	for tag := range v.pos {
		if v.neg[tag] != nil {
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)

	for _, tag := range tags {
		comparePair(pass, tag, v.pos[tag], v.neg[tag])
	}
}

func comparePair(pass *Pass, tag string, tagged, stub *ast.File) {
	tsig := exportedSignatures(pass.Fset, tagged)
	ssig := exportedSignatures(pass.Fset, stub)
	for _, name := range sortedSigKeys(tsig) {
		ts := tsig[name]
		ss, ok := ssig[name]
		if !ok {
			pass.Reportf(ts.pos, "exported %s is declared in the %s-tagged variant but missing from the !%s stub — the zero-overhead pair is out of sync",
				name, tag, tag)
			continue
		}
		if ts.sig != ss.sig {
			pass.Reportf(ss.pos, "exported %s differs between build variants: tagged (%s) declares `%s`, stub (!%s) declares `%s`",
				name, tag, ts.sig, tag, ss.sig)
		}
	}
	for _, name := range sortedSigKeys(ssig) {
		if _, ok := tsig[name]; !ok {
			pass.Reportf(ssig[name].pos, "exported %s is declared in the !%s stub but missing from the %s-tagged variant",
				name, tag, tag)
		}
	}
}

type declSig struct {
	sig string
	pos token.Pos
}

func sortedSigKeys(m map[string]declSig) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// exportedSignatures renders every exported top-level declaration of f.
// Methods key as "Recv.Name"; methods on unexported receivers are skipped
// (they are not API).
func exportedSignatures(fset *token.FileSet, f *ast.File) map[string]declSig {
	out := make(map[string]declSig)
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			key := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) > 0 {
				recv := receiverTypeName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				key = recv + "." + key
			}
			out[key] = declSig{sig: renderFuncSig(fset, d), pos: d.Name.Pos()}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					out[s.Name.Name] = declSig{sig: "type " + renderNode(fset, sanitizedTypeSpec(s)), pos: s.Name.Pos()}
				case *ast.ValueSpec:
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					typ := ""
					if s.Type != nil {
						typ = " " + renderNode(fset, s.Type)
					}
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						out[name.Name] = declSig{sig: kind + " " + name.Name + typ, pos: name.Pos()}
					}
				}
			}
		}
	}
	return out
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	}
	return ""
}

// renderFuncSig prints the declaration without body, doc, or parameter
// names — only types are compared, so renaming a parameter is not drift.
func renderFuncSig(fset *token.FileSet, d *ast.FuncDecl) string {
	cp := *d
	cp.Doc = nil
	cp.Body = nil
	cp.Type = stripParamNames(d.Type)
	if d.Recv != nil {
		recv := *d.Recv
		recv.List = stripFieldNames(d.Recv.List)
		cp.Recv = &recv
	}
	return renderNode(fset, &cp)
}

func stripParamNames(ft *ast.FuncType) *ast.FuncType {
	cp := *ft
	if ft.Params != nil {
		params := *ft.Params
		params.List = stripFieldNames(ft.Params.List)
		cp.Params = &params
	}
	if ft.Results != nil {
		results := *ft.Results
		results.List = stripFieldNames(ft.Results.List)
		cp.Results = &results
	}
	return &cp
}

// stripFieldNames expands `a, b int` to two anonymous `int` entries so the
// arity and types compare positionally.
func stripFieldNames(list []*ast.Field) []*ast.Field {
	var out []*ast.Field
	for _, f := range list {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, &ast.Field{Type: f.Type})
		}
	}
	return out
}

func sanitizedTypeSpec(s *ast.TypeSpec) *ast.TypeSpec {
	cp := *s
	cp.Doc = nil
	cp.Comment = nil
	return &cp
}

// renderNode prints an AST node with whitespace normalized to single
// spaces, so gofmt layout differences never read as drift.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// customTags lists the non-default tags an expression mentions (GOOS,
// GOARCH, go1.N, etc. are part of the default set and never gate a pair).
func customTags(expr constraint.Expr) []string {
	seen := make(map[string]bool)
	var walk func(e constraint.Expr)
	walk = func(e constraint.Expr) {
		switch e := e.(type) {
		case *constraint.TagExpr:
			if !defaultTag(e.Tag) && !strings.HasPrefix(e.Tag, "go1.") {
				seen[e.Tag] = true
			}
		case *constraint.NotExpr:
			walk(e.X)
		case *constraint.AndExpr:
			walk(e.X)
			walk(e.Y)
		case *constraint.OrExpr:
			walk(e.X)
			walk(e.Y)
		}
	}
	walk(expr)
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// evalWithTag evaluates expr with `tag` forced to val and everything else
// at its default.
func evalWithTag(expr constraint.Expr, tag string, val bool) bool {
	return expr.Eval(func(t string) bool {
		if t == tag {
			return val
		}
		return defaultTag(t)
	})
}
