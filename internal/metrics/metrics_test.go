package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	r := NewRecorder()
	for _, ms := range []int{10, 20, 30, 40, 100} {
		r.Observe(time.Duration(ms) * time.Millisecond)
	}
	r.ObserveError()
	s := r.Summarize()
	if s.Count != 5 || s.Errors != 1 {
		t.Errorf("count/errors = %d/%d", s.Count, s.Errors)
	}
	if s.Mean != 40*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.P50 != 30*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 != 100*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
}

func TestEmptySummary(t *testing.T) {
	r := NewRecorder()
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.Throughput != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if got := r.Series(time.Second); got != nil {
		t.Errorf("empty series: %v", got)
	}
}

func TestSeriesBucketsByElapsedTime(t *testing.T) {
	r := NewRecorder()
	r.Observe(5 * time.Millisecond)
	r.Observe(15 * time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	r.Observe(30 * time.Millisecond)
	buckets := r.Series(20 * time.Millisecond)
	if len(buckets) < 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Count != 2 {
		t.Errorf("bucket0 count = %d, want 2", buckets[0].Count)
	}
	if buckets[0].Mean != 10*time.Millisecond {
		t.Errorf("bucket0 mean = %v", buckets[0].Mean)
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("series total = %d, want 3", total)
	}
	if buckets[0].Throughput != 100 { // 2 per 20ms
		t.Errorf("bucket0 throughput = %v", buckets[0].Throughput)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Observe(time.Millisecond)
				r.ObserveError()
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 || r.Errors() != 800 {
		t.Errorf("count=%d errors=%d", r.Count(), r.Errors())
	}
}

// TestPropertyQuantileOrdering: for random observation sets, p50 <= p95 <=
// p99 <= max and the mean lies within [min, max].
func TestPropertyQuantileOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder()
		n := 1 + rng.Intn(200)
		minL, maxL := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < n; i++ {
			l := time.Duration(rng.Intn(1000)+1) * time.Microsecond
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			r.Observe(l)
		}
		s := r.Summarize()
		return s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Mean >= minL && s.Mean <= maxL && s.Max == maxL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.Observe(time.Millisecond)
	if s := r.Summarize().String(); s == "" {
		t.Error("empty String()")
	}
}
