package obs

import (
	"sort"
	"sync"
	"time"
)

// Sample is one point of a tenant's time series: the migration-relevant
// gauges (lag, debt, pacing, SSL footprint, sessions) plus the cumulative
// relayed-operation count, from which the per-sample throughput is derived
// at record time so readers never need the neighboring sample.
type Sample struct {
	At        time.Time     `json:"at"`
	Lag       int64         `json:"lag"`
	Debt      int64         `json:"debt"`
	Ops       int64         `json:"ops"`   // cumulative operations relayed for the tenant
	OpsPerSec float64       `json:"ops_s"` // derived from the previous sample's Ops/At
	PaceDelay time.Duration `json:"pace"`
	SSLBytes  int64         `json:"ssl_bytes"`
	Sessions  int64         `json:"sessions"`
}

// DefaultHistoryCap is the per-tenant ring size of the package-level
// history: at the default 1s cadence, a bit over 8 minutes of samples in a
// fixed ~40KB per tenant.
const DefaultHistoryCap = 512

// Hist is the process-wide history the middleware's sampler records into
// and the admin HISTORY command reads.
var Hist = NewHistory(DefaultHistoryCap)

// History holds fixed-memory per-tenant sample rings. Recording is a map
// lookup and a slot write under one mutex — it happens at sampler cadence
// (seconds), never on the per-operation hot path — and the whole structure
// is gated on the global obs enable flag like every other mutation in the
// package.
type History struct {
	mu     sync.Mutex
	cap    int
	series map[string]*sampleRing
}

type sampleRing struct {
	ring []Sample
	next uint64 // total samples ever recorded; ring[next%len] is the oldest slot
}

// NewHistory creates a history with per-tenant rings of n samples
// (minimum 16).
func NewHistory(n int) *History {
	if n < 16 {
		n = 16
	}
	return &History{cap: n, series: make(map[string]*sampleRing)}
}

// Record appends one sample to the tenant's ring, deriving OpsPerSec from
// the previous sample. No-op while obs is disabled (one atomic load).
func (h *History) Record(tenant string, s Sample) {
	if !enabled.Load() {
		return
	}
	h.mu.Lock()
	r := h.series[tenant]
	if r == nil {
		r = &sampleRing{ring: make([]Sample, h.cap)}
		h.series[tenant] = r
	}
	if r.next > 0 {
		prev := r.ring[(r.next-1)%uint64(len(r.ring))]
		if dt := s.At.Sub(prev.At).Seconds(); dt > 0 && s.Ops >= prev.Ops {
			s.OpsPerSec = float64(s.Ops-prev.Ops) / dt
		}
	}
	r.ring[r.next%uint64(len(r.ring))] = s
	r.next++
	h.mu.Unlock()
}

// Drop removes a tenant's series (tenant teardown; keeps long-lived
// processes from accumulating rings for departed tenants).
func (h *History) Drop(tenant string) {
	h.mu.Lock()
	delete(h.series, tenant)
	h.mu.Unlock()
}

// Tenants lists tenants with recorded samples, sorted.
func (h *History) Tenants() []string {
	h.mu.Lock()
	out := make([]string, 0, len(h.series))
	for t := range h.series {
		out = append(out, t)
	}
	h.mu.Unlock()
	sort.Strings(out)
	return out
}

// Last returns the tenant's most recent n samples, oldest first.
func (h *History) Last(tenant string, n int) []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.series[tenant]
	if r == nil {
		return nil
	}
	return r.copyLocked(n)
}

// Window returns the tenant's samples with from <= At <= to, oldest first.
// A zero `to` means "no upper bound".
func (h *History) Window(tenant string, from, to time.Time) []Sample {
	h.mu.Lock()
	var all []Sample
	if r := h.series[tenant]; r != nil {
		all = r.copyLocked(len(r.ring))
	}
	h.mu.Unlock()
	out := make([]Sample, 0, len(all))
	for _, s := range all {
		if s.At.Before(from) || (!to.IsZero() && s.At.After(to)) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Snapshot copies the most recent n samples of every tenant (the -debug
// JSON endpoint's history section).
func (h *History) Snapshot(n int) map[string][]Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]Sample, len(h.series))
	for t, r := range h.series {
		out[t] = r.copyLocked(n)
	}
	return out
}

func (r *sampleRing) copyLocked(n int) []Sample {
	size := uint64(len(r.ring))
	have := r.next
	if have > size {
		have = size
	}
	if n >= 0 && uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Sample, 0, have)
	for i := r.next - have; i < r.next; i++ {
		out = append(out, r.ring[i%size])
	}
	return out
}

// SeriesStats is min/max/avg over one field of a sample window.
type SeriesStats struct {
	Min int64   `json:"min"`
	Max int64   `json:"max"`
	Avg float64 `json:"avg"`
}

// WindowStats summarizes a sample window field by field.
type WindowStats struct {
	Count     int         `json:"count"`
	From      time.Time   `json:"from,omitempty"`
	To        time.Time   `json:"to,omitempty"`
	Lag       SeriesStats `json:"lag"`
	Debt      SeriesStats `json:"debt"`
	OpsPerSec SeriesStats `json:"ops_s"`
	PaceNs    SeriesStats `json:"pace_ns"`
	SSLBytes  SeriesStats `json:"ssl_bytes"`
	Sessions  SeriesStats `json:"sessions"`
}

// Summarize computes windowed min/max/avg over a sample slice. An empty
// window yields the zero WindowStats.
func Summarize(samples []Sample) WindowStats {
	var st WindowStats
	if len(samples) == 0 {
		return st
	}
	st.Count = len(samples)
	st.From = samples[0].At
	st.To = samples[len(samples)-1].At
	acc := func(s *SeriesStats, i int, v int64) {
		if i == 0 || v < s.Min {
			s.Min = v
		}
		if i == 0 || v > s.Max {
			s.Max = v
		}
		s.Avg += float64(v)
	}
	for i, s := range samples {
		acc(&st.Lag, i, s.Lag)
		acc(&st.Debt, i, s.Debt)
		acc(&st.OpsPerSec, i, int64(s.OpsPerSec))
		acc(&st.PaceNs, i, int64(s.PaceDelay))
		acc(&st.SSLBytes, i, s.SSLBytes)
		acc(&st.Sessions, i, s.Sessions)
	}
	n := float64(len(samples))
	for _, s := range []*SeriesStats{&st.Lag, &st.Debt, &st.OpsPerSec, &st.PaceNs, &st.SSLBytes, &st.Sessions} {
		s.Avg /= n
	}
	return st
}

// Stats summarizes the tenant's samples inside the trailing window (0 =
// the whole ring).
func (h *History) Stats(tenant string, window time.Duration) WindowStats {
	var from time.Time
	if window > 0 {
		from = time.Now().Add(-window)
	}
	return Summarize(h.Window(tenant, from, time.Time{}))
}
