package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestParseCacheSharedStatementConcurrent runs the same UPDATE text from
// two sessions at once. Both sessions execute the identical cached AST, so
// any mutation of the shared statement during execution is a data race
// this test exposes under -race.
func TestParseCacheSharedStatementConcurrent(t *testing.T) {
	e := newTestEngine(t)
	s1, _ := e.NewSession("shop")
	s2, _ := e.NewSession("shop")
	mustExec(t, s1, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s1, "INSERT INTO t (id, v) VALUES (1, 0)")
	mustExec(t, s1, "INSERT INTO t (id, v) VALUES (2, 0)")

	// Warm the cache so both goroutines hit the shared entry.
	const upd1 = "UPDATE t SET v = v + 1 WHERE id = 1"
	const upd2 = "UPDATE t SET v = v + 1 WHERE id = 2"
	mustExec(t, s1, upd1)
	mustExec(t, s1, upd2)

	var wg sync.WaitGroup
	run := func(s *Session, sql string) {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := s.Exec(sql); err != nil {
				t.Errorf("Exec(%q): %v", sql, err)
				return
			}
		}
	}
	wg.Add(2)
	go run(s1, upd1)
	go run(s2, upd2)
	wg.Wait()

	res := mustExec(t, s1, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 201 {
		t.Errorf("id=1 v = %v, want 201", res.Rows[0][0])
	}
	res = mustExec(t, s1, "SELECT v FROM t WHERE id = 2")
	if res.Rows[0][0].Int != 201 {
		t.Errorf("id=2 v = %v, want 201", res.Rows[0][0])
	}
	if st := s1.db.ParseCacheStats(); st.Hits == 0 {
		t.Error("expected cache hits during the concurrent run")
	}
}

// TestParseCacheDDLInvalidation checks that every DDL form flushes cached
// statements targeting its table, and only those.
func TestParseCacheDDLInvalidation(t *testing.T) {
	e := newTestEngine(t)
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE a (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "CREATE TABLE b (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO a (id, v) VALUES (1, 1)")
	mustExec(t, s, "INSERT INTO b (id, v) VALUES (1, 1)")

	cached := func(sql string) bool {
		_, ok := s.db.pcache.Get(sql)
		return ok
	}
	warm := func() {
		mustExec(t, s, "SELECT v FROM a WHERE id = 1")
		mustExec(t, s, "SELECT v FROM b WHERE id = 1")
	}

	warm()
	mustExec(t, s, "CREATE INDEX av ON a (v)")
	if cached("SELECT v FROM a WHERE id = 1") {
		t.Error("CREATE INDEX did not flush cached statements on a")
	}
	if !cached("SELECT v FROM b WHERE id = 1") {
		t.Error("CREATE INDEX on a flushed statements on b")
	}

	warm()
	mustExec(t, s, "DROP INDEX av ON a")
	if cached("SELECT v FROM a WHERE id = 1") {
		t.Error("DROP INDEX did not flush cached statements on a")
	}

	warm()
	mustExec(t, s, "DROP TABLE a")
	if cached("SELECT v FROM a WHERE id = 1") {
		t.Error("DROP TABLE did not flush cached statements on a")
	}
	if !cached("SELECT v FROM b WHERE id = 1") {
		t.Error("DROP TABLE a flushed statements on b")
	}

	// Re-creating a flushes again (a statement cached between DROP and
	// CREATE would otherwise survive into the new table's lifetime).
	mustExec(t, s, "SELECT v FROM b WHERE id = 1")
	mustExec(t, s, "CREATE TABLE a (id INT PRIMARY KEY, v INT)")
	if cached("SELECT v FROM a WHERE id = 1") {
		t.Error("CREATE TABLE did not flush cached statements on a")
	}
}

// TestParseCacheDisabled runs a session with caching off; everything still
// works and stats stay zero (the hotpath ablation's baseline leg).
func TestParseCacheDisabled(t *testing.T) {
	e := New(Options{LockTimeout: time.Second, ParseCacheSize: -1})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("shop"); err != nil {
		t.Fatal(err)
	}
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 7)")
	for i := 0; i < 3; i++ {
		res := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
		if res.Rows[0][0].Int != 7 {
			t.Fatalf("v = %v", res.Rows[0][0])
		}
	}
	if st := s.db.ParseCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Len != 0 {
		t.Errorf("disabled cache reported activity: %+v", st)
	}
}

// TestParseCacheBoundedUnderChurn: distinct statement texts beyond the
// cache capacity never grow the map past the bound.
func TestParseCacheBoundedUnderChurn(t *testing.T) {
	e := New(Options{LockTimeout: time.Second, ParseCacheSize: 32})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("shop"); err != nil {
		t.Fatal(err)
	}
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 500; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i))
	}
	if st := s.db.ParseCacheStats(); st.Len > 32 {
		t.Errorf("cache grew past capacity: %+v", st)
	}
}
