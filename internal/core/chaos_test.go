//go:build faultinject

package core

// Chaos suite: every migration step is killed (or slowed, or hung, or
// partitioned) through the internal/fault failpoint registry while customer
// writers hammer the source, and each scenario must end in the same place:
// no client-visible error on the source path, the tenant back in normal
// single-master service, an accurate rollback report, and a follow-up
// migration that succeeds. Goroutine leaks are caught by newRig's
// testutil.CheckGoroutines. Run with: go test -tags faultinject -race .

import (
	"strings"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
)

type chaosCase struct {
	name    string
	nodes   int      // rig size; default 2 (node0 = source, node1 = dest)
	backups []string // extra destinations for MigrateOptions.Backups
	arm     func()   // installs the failpoints just before Migrate
	// tweak adjusts the MigrateOptions (e.g. a small ChunkStatements so a
	// mid-stream failpoint has a stream to land in).
	tweak func(*MigrateOptions)
	// during runs concurrently with Migrate (crash injection, hang
	// release); runChaos joins it before asserting.
	during func(t *testing.T, rig *testRig, tn *Tenant)

	// wantStep non-empty: the migration must roll back at this step with
	// wantReason as a substring of Report.RollbackReason, and a follow-up
	// migration to remigrate (default "node1") must succeed. Empty: the
	// migration must succeed despite the fault.
	wantStep   string
	wantReason string
	remigrate  string

	minDiscarded int // lower bound on len(Report.Discarded)
}

func chaosScenarios() []chaosCase {
	return []chaosCase{
		{
			name:       "dump_error",
			arm:        func() { fault.Enable(faultStep1Dump, fault.Policy{Times: 1}) },
			wantStep:   "step1.snapshot",
			wantReason: "injected",
		},
		{
			name:       "restore_error_no_survivor",
			arm:        func() { fault.Enable(faultStep2Restore, fault.Policy{Times: 1}) },
			wantStep:   "step2.restore",
			wantReason: "injected",
		},
		{
			name:         "restore_error_backup_survives",
			nodes:        3,
			backups:      []string{"node2"},
			arm:          func() { fault.Enable(faultStep2Restore, fault.Policy{Times: 1}) },
			minDiscarded: 1,
		},
		{
			name: "chunk_stream_drop_mid_transfer",
			// The dump stream's connection drops after two chunks made it
			// across: the client poisons the session, Step 1 fails, and
			// the whole migration rolls back with the source untouched.
			tweak: func(o *MigrateOptions) { o.ChunkStatements = 1 },
			arm: func() {
				fault.Enable(faultStep1Chunk, fault.Policy{Drop: true, Skip: 2})
			},
			wantStep:   "step1.snapshot",
			wantReason: "injected",
		},
		{
			name: "chunk_restore_error_no_survivor",
			// A restore applier fails on the third chunk; the only slave
			// is discarded and the migration rolls back at Step 2.
			tweak: func(o *MigrateOptions) { o.ChunkStatements = 1 },
			arm: func() {
				fault.Enable(faultStep1Restore, fault.Policy{Times: 1, Skip: 2})
			},
			wantStep:   "step2.restore",
			wantReason: "injected",
		},
		{
			name:    "chunk_restore_error_backup_survives",
			nodes:   3,
			backups: []string{"node2"},
			tweak:   func(o *MigrateOptions) { o.ChunkStatements = 1 },
			arm: func() {
				fault.Enable(faultStep1Restore, fault.Policy{Times: 1, Skip: 2})
			},
			minDiscarded: 1,
		},
		{
			name: "chunk_apply_slow_slave",
			// Every chunk apply is delayed: the bounded queues and the
			// transfer budget backpressure the dump, but the migration
			// still completes.
			tweak: func(o *MigrateOptions) { o.ChunkStatements = 1 },
			arm: func() {
				fault.Enable(faultStep1Restore, fault.Policy{Delay: 2 * time.Millisecond, Times: 50})
			},
		},
		{
			name:       "propagation_error",
			arm:        func() { fault.Enable(faultStep3Propagate, fault.Policy{Times: 1}) },
			wantStep:   "step3.propagate",
			wantReason: "injected",
		},
		{
			name: "propagation_conn_drop_storm",
			// Every replayed statement drops the propagation connection:
			// the destination looks dead, the only slave is discarded,
			// and the migration rolls back.
			arm:        func() { fault.Enable(faultStep3Exec, fault.Policy{Drop: true}) },
			wantStep:   "step3.propagate",
			wantReason: "every slave failed",
		},
		{
			name:  "dest_crash_mid_propagation",
			nodes: 3,
			during: func(t *testing.T, rig *testRig, tn *Tenant) {
				deadline := time.Now().Add(20 * time.Second)
				for {
					phase, _, _ := tn.Progress()
					if phase == "step3.propagate" {
						break
					}
					if time.Now().After(deadline) {
						t.Error("migration never reached step3.propagate")
						return
					}
					time.Sleep(time.Millisecond)
				}
				rig.nodes[1].Close() // hard crash of the destination
			},
			wantStep:   "step3.propagate",
			wantReason: "every slave failed",
			remigrate:  "node2", // node1 is gone for good
		},
		{
			name:       "switchover_error_no_survivor",
			arm:        func() { fault.Enable(faultStep4Switch, fault.Policy{Times: 1}) },
			wantStep:   "step4.switchover",
			wantReason: "no slave acknowledged promotion",
		},
		{
			name:         "switchover_error_backup_promoted",
			nodes:        3,
			backups:      []string{"node2"},
			arm:          func() { fault.Enable(faultStep4Switch, fault.Policy{Times: 1}) },
			minDiscarded: 1,
		},
		{
			name: "partition_healed_within_retries",
			// The destination is unreachable for the first two dial
			// attempts; the default retry policy (4 attempts) outlasts
			// the partition and the migration succeeds.
			arm: func() { fault.Enable(faultRestoreDial, fault.Policy{Times: 2}) },
		},
		{
			name: "slow_destination",
			arm: func() {
				fault.Enable(faultStep3Exec, fault.Policy{Delay: 2 * time.Millisecond, Times: 200})
			},
		},
		{
			name: "stalled_destination_released",
			arm:  func() { fault.Enable(faultStep3Exec, fault.Policy{Hang: true, Times: 1}) },
			during: func(t *testing.T, rig *testRig, tn *Tenant) {
				deadline := time.Now().Add(20 * time.Second)
				for fault.SiteFired(faultStep3Exec) == 0 {
					if time.Now().After(deadline) {
						t.Error("hang failpoint never fired")
						return
					}
					time.Sleep(time.Millisecond)
				}
				fault.Release(faultStep3Exec)
			},
		},
	}
}

func TestChaosMigration(t *testing.T) {
	for _, tc := range chaosScenarios() {
		t.Run(tc.name, func(t *testing.T) { runChaos(t, tc) })
	}
}

func runChaos(t *testing.T, tc chaosCase) {
	t.Cleanup(fault.Reset)
	nNodes := tc.nodes
	if nNodes == 0 {
		nNodes = 2
	}
	rig := newRig(t, nNodes, engine.Options{})
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	// Customer writers run through every phase of the scenario; loadgen
	// t.Errorf's on any error the source path surfaces, which is the
	// "clients never observe the failure" assertion.
	const writers = 3
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 3*time.Millisecond, stop, done)
	}
	time.Sleep(30 * time.Millisecond)

	if tc.arm != nil {
		tc.arm()
	}
	var duringDone chan struct{}
	if tc.during != nil {
		duringDone = make(chan struct{})
		go func() {
			defer close(duringDone)
			tc.during(t, rig, tn)
		}()
	}

	opts := MigrateOptions{Strategy: Madeus, Backups: tc.backups}
	if tc.tweak != nil {
		tc.tweak(&opts)
	}
	rep, err := rig.mw.Migrate("a", "node1", opts)
	if duringDone != nil {
		<-duringDone
	}
	fault.Reset()

	if tc.wantStep != "" {
		if err == nil {
			t.Fatal("migration succeeded; want an injected failure")
		}
		if rep == nil {
			t.Fatalf("failed migration returned no report (err: %v)", err)
		}
		if !rep.Failed || rep.RollbackStep != tc.wantStep {
			t.Errorf("RollbackStep = %q (failed=%v), want %q", rep.RollbackStep, rep.Failed, tc.wantStep)
		}
		if !strings.Contains(rep.RollbackReason, tc.wantReason) {
			t.Errorf("RollbackReason = %q, want substring %q", rep.RollbackReason, tc.wantReason)
		}
		if node, _ := tn.Node(); node.BackendName() != "node0" {
			t.Errorf("after rollback tenant is on %s, want node0", node.BackendName())
		}
	} else {
		if err != nil {
			t.Fatalf("migration failed despite survivable fault: %v", err)
		}
		if node, _ := tn.Node(); node.BackendName() == "node0" {
			t.Error("migration reported success but tenant is still on the source")
		}
	}
	if len(rep.Discarded) < tc.minDiscarded {
		t.Errorf("Discarded = %v, want at least %d slaves", rep.Discarded, tc.minDiscarded)
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after migration = %v, want normal", st)
	}

	// Service must have continued: let the writers run a little longer on
	// whatever node the tenant ended up on.
	time.Sleep(30 * time.Millisecond)

	// A rolled-back tenant must be re-migratable with a fresh MTS.
	if tc.wantStep != "" {
		dest := tc.remigrate
		if dest == "" {
			dest = "node1"
		}
		rep2, err := rig.mw.Migrate("a", dest, MigrateOptions{Strategy: Madeus})
		if err != nil {
			t.Fatalf("re-migration after rollback: %v", err)
		}
		if rep2.Failed || rep2.RollbackStep != "" {
			t.Errorf("re-migration report: failed=%v step=%q", rep2.Failed, rep2.RollbackStep)
		}
		if node, _ := tn.Node(); node.BackendName() != dest {
			t.Errorf("after re-migration tenant is on %s, want %s", node.BackendName(), dest)
		}
		if st := tn.State(); st != StateNormal {
			t.Fatalf("tenant state after re-migration = %v, want normal", st)
		}
	}

	close(stop)
	total := 0
	for w := 0; w < writers; w++ {
		total += <-done
	}
	if total == 0 {
		t.Error("no transactions committed during the chaos run")
	}
	// Every commit the writers saw must survive on the final master: 120
	// rows seeded at 100, +1 per committed transfer.
	node, _ := tn.Node()
	if got, want := sumBal(t, node, "a"), 120*100+total; got != want {
		t.Errorf("final balance sum on %s = %d, want %d (lost or duplicated commits)", node.BackendName(), got, want)
	}
}

// TestChaosRetryCountersAdvance pins that a healed partition is visible in
// the observability surface: the dial retries that bridged it are counted.
func TestChaosRetryCountersAdvance(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 120)

	retries0 := obsMigRetries.Value()
	fault.Enable(faultRestoreDial, fault.Policy{Times: 2})
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
	if err != nil {
		t.Fatalf("migration across healed partition: %v", err)
	}
	if rep.Failed {
		t.Fatalf("report says failed: %v", rep.Err)
	}
	if fired := fault.SiteFired(faultRestoreDial); fired != 2 {
		t.Errorf("dial failpoint fired %d times, want 2", fired)
	}
	if d := obsMigRetries.Value() - retries0; d < 2 {
		t.Errorf("core.migrations.retries advanced by %d, want >= 2", d)
	}
}

// TestConsistencyAcrossInjectedFailure is the paper's correctness claim under
// our failure model: a migration that dies mid-propagation while writers are
// committing must leave the source authoritative, and the eventual successful
// migration must produce a destination byte-identical to it, with the exact
// number of committed updates applied (snapshot isolation: no lost updates,
// no partial syncsets).
func TestConsistencyAcrossInjectedFailure(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 4
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 3*time.Millisecond, stop, done)
	}
	time.Sleep(50 * time.Millisecond)

	// First attempt dies mid-propagation under load and rolls back.
	fault.Enable(faultStep3Propagate, fault.Policy{Times: 1})
	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus}); err == nil {
		t.Fatal("expected the injected fault to abort the first migration")
	}
	fault.Reset()
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after rollback = %v, want normal", st)
	}

	// Keep writing on the source after the rollback, then quiesce so the
	// retry can be diffed table-for-table against the copy it came from.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	total := 0
	for w := 0; w < writers; w++ {
		total += <-done
	}

	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus, KeepSource: true})
	if err != nil {
		t.Fatalf("retry migration: %v", err)
	}
	if rep.Failed {
		t.Fatalf("retry report says failed: %v", rep.Err)
	}
	assertStateEqual(t, rig.nodes[0], rig.nodes[1], "a")
	if got, want := sumBal(t, rig.nodes[1], "a"), 120*100+total; got != want {
		t.Errorf("final balance sum = %d, want %d (lost or duplicated commits across the failed attempt)", got, want)
	}
}
