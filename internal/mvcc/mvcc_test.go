package mvcc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

func testTable(t *testing.T) (*Manager, *Table) {
	t.Helper()
	s, err := storage.NewSchema("kv", []storage.Column{
		{Name: "k", Type: sqlmini.KindInt, PrimaryKey: true},
		{Name: "v", Type: sqlmini.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	return m, NewTable(s, m)
}

func row(k, v int64) storage.Row {
	return storage.Row{sqlmini.NewInt(k), sqlmini.NewInt(v)}
}

func key(k int64) sqlmini.Value { return sqlmini.NewInt(k) }

func mustInsert(t *testing.T, tb *Table, txn *Txn, k, v int64) {
	t.Helper()
	if err := tb.Insert(txn, row(k, v)); err != nil {
		t.Fatal(err)
	}
}

func mustCommit(t *testing.T, txn *Txn) {
	t.Helper()
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndGetVisibleAfterCommit(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 10)
	// Own write visible before commit.
	if r := tb.Get(t1, key(1)); r == nil || r[1].Int != 10 {
		t.Fatalf("own write not visible: %v", r)
	}
	// Not visible to a concurrent snapshot.
	t2 := m.Begin()
	if r := tb.Get(t2, key(1)); r != nil {
		t.Fatalf("uncommitted write leaked: %v", r)
	}
	mustCommit(t, t1)
	// Still not visible to t2's old snapshot (repeatable read).
	if r := tb.Get(t2, key(1)); r != nil {
		t.Fatalf("snapshot isolation violated: %v", r)
	}
	// Visible to a new snapshot.
	t3 := m.Begin()
	if r := tb.Get(t3, key(1)); r == nil || r[1].Int != 10 {
		t.Fatalf("committed write not visible: %v", r)
	}
}

func TestAbortedWritesInvisible(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 10)
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if r := tb.Get(t2, key(1)); r != nil {
		t.Fatalf("aborted write visible: %v", r)
	}
	// Re-insert of the same key after an aborted insert must succeed.
	t3 := m.Begin()
	mustInsert(t, tb, t3, 1, 11)
	mustCommit(t, t3)
	t4 := m.Begin()
	if r := tb.Get(t4, key(1)); r == nil || r[1].Int != 11 {
		t.Fatalf("got %v", r)
	}
}

func TestUpdateCreatesNewVersionOldSnapshotSeesOld(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 10)
	mustCommit(t, t1)

	reader := m.Begin() // snapshot before the update
	writer := m.Begin()
	ok, err := tb.Update(writer, key(1), row(1, 20))
	if err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	mustCommit(t, writer)

	if r := tb.Get(reader, key(1)); r == nil || r[1].Int != 10 {
		t.Fatalf("old snapshot sees %v, want v=10", r)
	}
	fresh := m.Begin()
	if r := tb.Get(fresh, key(1)); r == nil || r[1].Int != 20 {
		t.Fatalf("new snapshot sees %v, want v=20", r)
	}
}

func TestDeleteVisibility(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 10)
	mustCommit(t, t1)

	reader := m.Begin()
	deleter := m.Begin()
	ok, err := tb.Delete(deleter, key(1))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	// Deleter no longer sees it; old reader still does.
	if r := tb.Get(deleter, key(1)); r != nil {
		t.Fatalf("deleter still sees %v", r)
	}
	if r := tb.Get(reader, key(1)); r == nil {
		t.Fatal("reader snapshot lost the row")
	}
	mustCommit(t, deleter)
	fresh := m.Begin()
	if r := tb.Get(fresh, key(1)); r != nil {
		t.Fatalf("deleted row visible: %v", r)
	}
}

func TestFirstUpdaterWinsCommittedWinner(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 10)
	mustCommit(t, t0)

	a := m.Begin()
	b := m.Begin()
	if ok, err := tb.Update(a, key(1), row(1, 11)); err != nil || !ok {
		t.Fatalf("a update: %v %v", ok, err)
	}
	mustCommit(t, a)
	// b attempts the same row after a committed: immediate abort.
	if _, err := tb.Update(b, key(1), row(1, 12)); !errors.Is(err, ErrSerialization) {
		t.Fatalf("got %v, want ErrSerialization", err)
	}
}

func TestFirstUpdaterWinsActiveWinnerCommits(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 10)
	mustCommit(t, t0)

	a := m.Begin()
	b := m.Begin()
	if ok, err := tb.Update(a, key(1), row(1, 11)); err != nil || !ok {
		t.Fatalf("a update: %v %v", ok, err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := tb.Update(b, key(1), row(1, 12)) // blocks on a's lock
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let b block
	mustCommit(t, a)
	if err := <-errc; !errors.Is(err, ErrSerialization) {
		t.Fatalf("got %v, want ErrSerialization", err)
	}
}

func TestFirstUpdaterWinsActiveWinnerAborts(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 10)
	mustCommit(t, t0)

	a := m.Begin()
	b := m.Begin()
	if ok, err := tb.Update(a, key(1), row(1, 11)); err != nil || !ok {
		t.Fatalf("a update: %v %v", ok, err)
	}
	type res struct {
		ok  bool
		err error
	}
	resc := make(chan res, 1)
	go func() {
		ok, err := tb.Update(b, key(1), row(1, 12))
		resc <- res{ok, err}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	r := <-resc
	if r.err != nil || !r.ok {
		t.Fatalf("b should proceed after a aborts: %v %v", r.ok, r.err)
	}
	mustCommit(t, b)
	fresh := m.Begin()
	if got := tb.Get(fresh, key(1)); got == nil || got[1].Int != 12 {
		t.Fatalf("got %v, want v=12", got)
	}
}

func TestLockWaitTimeout(t *testing.T) {
	m, tb := testTable(t)
	m.LockTimeout = 30 * time.Millisecond
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 10)
	mustCommit(t, t0)

	a := m.Begin()
	if ok, err := tb.Update(a, key(1), row(1, 11)); err != nil || !ok {
		t.Fatal(err)
	}
	b := m.Begin()
	start := time.Now()
	_, err := tb.Update(b, key(1), row(1, 12))
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("got %v, want ErrLockTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timed out too early")
	}
	mustCommit(t, a)
}

func TestUniqueViolation(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 10)
	mustCommit(t, t0)

	t1 := m.Begin()
	if err := tb.Insert(t1, row(1, 99)); !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("got %v, want ErrUniqueViolation", err)
	}
}

func TestConcurrentInsertSameKeyFirstUpdaterWins(t *testing.T) {
	m, tb := testTable(t)
	a := m.Begin()
	b := m.Begin()
	if err := tb.Insert(a, row(1, 1)); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- tb.Insert(b, row(1, 2)) }()
	time.Sleep(20 * time.Millisecond)
	mustCommit(t, a)
	if err := <-errc; !errors.Is(err, ErrUniqueViolation) {
		t.Fatalf("got %v, want ErrUniqueViolation", err)
	}
}

func TestUpdateOwnWriteIntraWW(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 1)
	for i := int64(2); i <= 5; i++ {
		ok, err := tb.Update(t1, key(1), row(1, i))
		if err != nil || !ok {
			t.Fatalf("update %d: %v %v", i, ok, err)
		}
	}
	mustCommit(t, t1)
	fresh := m.Begin()
	if r := tb.Get(fresh, key(1)); r == nil || r[1].Int != 5 {
		t.Fatalf("got %v, want v=5 (last intra-txn write wins)", r)
	}
}

func TestUpdateMissingRow(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	ok, err := tb.Update(t1, key(404), row(404, 1))
	if err != nil || ok {
		t.Fatalf("got %v %v, want false nil", ok, err)
	}
	ok, err = tb.Delete(t1, key(404))
	if err != nil || ok {
		t.Fatalf("delete: got %v %v, want false nil", ok, err)
	}
}

func TestPKImmutable(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 1)
	mustCommit(t, t1)
	t2 := m.Begin()
	if _, err := tb.Update(t2, key(1), row(2, 1)); !errors.Is(err, ErrPKImmutable) {
		t.Fatalf("got %v, want ErrPKImmutable", err)
	}
}

func TestScanOrderAndSnapshotStability(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	for _, k := range []int64{5, 1, 3} {
		mustInsert(t, tb, t1, k, k*10)
	}
	mustCommit(t, t1)

	reader := m.Begin()
	// Concurrent committed insert must not appear in reader's scan.
	w := m.Begin()
	mustInsert(t, tb, w, 2, 20)
	mustCommit(t, w)

	var keys []int64
	tb.Scan(reader, func(r storage.Row) bool {
		keys = append(keys, r[0].Int)
		return true
	})
	want := []int64{1, 3, 5}
	if len(keys) != len(want) {
		t.Fatalf("scan keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys %v, want %v (pk order)", keys, want)
		}
	}
	if n := tb.Len(m.Begin()); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	for k := int64(1); k <= 10; k++ {
		mustInsert(t, tb, t1, k, k)
	}
	mustCommit(t, t1)
	n := 0
	tb.Scan(m.Begin(), func(storage.Row) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d rows, want 3", n)
	}
}

func TestTxnDoneErrors(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustCommit(t, t1)
	if err := tb.Insert(t1, row(1, 1)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("insert after commit: %v", err)
	}
	if _, err := t1.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := t1.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestIsUpdate(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	if t1.IsUpdate() {
		t.Error("fresh txn is update")
	}
	tb.Get(t1, key(1))
	if t1.IsUpdate() {
		t.Error("read made txn update")
	}
	mustInsert(t, tb, t1, 1, 1)
	if !t1.IsUpdate() {
		t.Error("insert did not mark update")
	}
}

// TestNoLostUpdateUnderContention hammers one row with concurrent
// increments. Under SI + first-updater-wins, every successful increment must
// be reflected: final value == number of successful commits.
func TestNoLostUpdateUnderContention(t *testing.T) {
	m, tb := testTable(t)
	m.LockTimeout = 2 * time.Second
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 0)
	mustCommit(t, t0)

	const workers = 8
	const attempts = 30
	var mu sync.Mutex
	succeeded := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				txn := m.Begin()
				cur := tb.Get(txn, key(1))
				if cur == nil {
					t.Error("row vanished")
					txn.Abort()
					return
				}
				ok, err := tb.Update(txn, key(1), row(1, cur[1].Int+1))
				if err != nil || !ok {
					txn.Abort()
					continue
				}
				if _, err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	final := tb.Get(m.Begin(), key(1))
	if final == nil {
		t.Fatal("row vanished")
	}
	if int(final[1].Int) != succeeded {
		t.Fatalf("final value %d != successful commits %d (lost update)", final[1].Int, succeeded)
	}
	if succeeded == 0 {
		t.Fatal("no increment ever succeeded")
	}
}

// TestWriteSkewAllowed documents that SI (not serializability) is provided:
// two transactions reading each other's write targets both commit.
func TestWriteSkewAllowed(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 100)
	mustInsert(t, tb, t0, 2, 100)
	mustCommit(t, t0)

	a := m.Begin()
	b := m.Begin()
	// a reads row 2, writes row 1; b reads row 1, writes row 2.
	if r := tb.Get(a, key(2)); r == nil {
		t.Fatal("a read")
	}
	if r := tb.Get(b, key(1)); r == nil {
		t.Fatal("b read")
	}
	if ok, err := tb.Update(a, key(1), row(1, 0)); err != nil || !ok {
		t.Fatalf("a write: %v %v", ok, err)
	}
	if ok, err := tb.Update(b, key(2), row(2, 0)); err != nil || !ok {
		t.Fatalf("b write: %v %v", ok, err)
	}
	mustCommit(t, a)
	mustCommit(t, b) // SI permits this; serializable would not
}
