package tpcw

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"madeus/internal/metrics"
	"madeus/internal/wire"
)

// EB is one emulated browser: a closed-loop client that issues one
// interaction, waits for the response, thinks, and repeats (Sec 5.1).
type EB struct {
	// ID distinguishes browsers; it namespaces the primary keys an EB
	// generates (orders, order lines, cart slots).
	ID int
	// Mix selects the browse/order profile.
	Mix Mix
	// Scale must match the loaded database.
	Scale Scale
	// Think is the mean think time between interactions. The paper uses
	// TPC-W's think times (seconds); scaled runs use milliseconds.
	// Actual think is uniform in [0.5, 1.5) x Think.
	Think time.Duration
	// Seed fixes the browser's private generator; 0 derives it from ID.
	Seed int64

	rng       *rand.Rand
	seq       int
	lastOrder int
}

// Run drives the browser against conn until ctx is cancelled. Successful
// interactions record their latency in rec; aborted interactions (e.g.
// first-updater-wins conflicts) count as errors and the browser retries
// with a fresh interaction. Run returns nil on cancellation and an error
// only on transport failure.
func (eb *EB) Run(ctx context.Context, conn Execer, rec *metrics.Recorder) error {
	seed := eb.Seed
	if seed == 0 {
		seed = int64(eb.ID + 1)
	}
	eb.rng = rand.New(rand.NewSource(seed))
	var think *time.Timer
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		it := eb.pick()
		start := time.Now()
		err := eb.interact(conn, it)
		switch {
		case err == nil:
			rec.Observe(time.Since(start))
		case !wire.IsTransportError(err):
			// The transaction failed server-side (commonly a
			// first-updater-wins serialization abort); roll back
			// and move on to the next interaction.
			_, _ = conn.Exec("ROLLBACK") // best-effort cleanup
			rec.ObserveError()
		default:
			if ctx.Err() != nil {
				return nil // shutdown race: connection torn down
			}
			return fmt.Errorf("tpcw: EB %d: %w", eb.ID, err)
		}
		if eb.Think > 0 {
			d := eb.Think/2 + time.Duration(eb.rng.Int63n(int64(eb.Think)))
			// Reuse one timer across iterations: time.After allocates a
			// new timer per think pause that only frees on expiry, which
			// at EB fleet scale is measurable churn.
			if think == nil {
				think = time.NewTimer(d)
				defer think.Stop()
			} else {
				think.Reset(d)
			}
			select {
			case <-ctx.Done():
				if !think.Stop() {
					<-think.C
				}
				return nil
			case <-think.C:
			}
		}
	}
}

// pick selects the next interaction per the mix.
func (eb *EB) pick() interaction {
	if eb.rng.Intn(100) < eb.Mix.UpdatePct {
		return pickWeighted(eb.rng, updateWeights)
	}
	return pickWeighted(eb.rng, readWeights)
}

func pickWeighted(rng *rand.Rand, table []struct {
	i interaction
	w int
}) interaction {
	total := 0
	for _, e := range table {
		total += e.w
	}
	n := rng.Intn(total)
	for _, e := range table {
		if n < e.w {
			return e.i
		}
		n -= e.w
	}
	return table[len(table)-1].i
}

func (eb *EB) item() int     { return eb.rng.Intn(eb.Scale.Items) }
func (eb *EB) customer() int { return eb.rng.Intn(eb.Scale.Customers) }

// nextID returns a unique EB-namespaced primary key.
func (eb *EB) nextID() int {
	eb.seq++
	return eb.ID*10_000_000 + eb.seq
}

// interact executes one interaction as one explicit transaction whose first
// operation is always a read (the no-blind-write assumption).
func (eb *EB) interact(c Execer, it interaction) error {
	switch it {
	case iHome:
		return eb.txn(c,
			fmt.Sprintf("SELECT c_uname, c_discount FROM customer WHERE c_id = %d", eb.customer()),
			fmt.Sprintf("SELECT i_title, i_cost FROM item WHERE i_id = %d", eb.item()),
		)
	case iProductDetail:
		i := eb.item()
		return eb.txn(c,
			fmt.Sprintf("SELECT i_title, i_a_id, i_cost, i_stock FROM item WHERE i_id = %d", i),
			fmt.Sprintf("SELECT a_fname, a_lname FROM author WHERE a_id = %d", i%maxInt(eb.Scale.Authors, 1)),
		)
	case iSearch:
		subject := subjects[eb.rng.Intn(len(subjects))]
		return eb.txn(c,
			fmt.Sprintf("SELECT i_id, i_title FROM item WHERE i_subject = '%s' LIMIT 20", subject),
		)
	case iBestSellers:
		return eb.txn(c,
			"SELECT i_id, i_title, i_stock FROM item ORDER BY i_stock DESC LIMIT 10",
		)
	case iOrderInquiry:
		o := eb.lastOrder
		if o == 0 {
			o = eb.nextID() - 1 // probe a plausible id; empty result is fine
		}
		return eb.txn(c,
			fmt.Sprintf("SELECT o_total, o_status FROM orders WHERE o_id = %d", o),
			fmt.Sprintf("SELECT ol_i_id, ol_qty FROM order_line WHERE ol_id = %d", o),
		)
	case iShoppingCart:
		i := eb.item()
		slot := eb.ID*1000 + eb.seq%40 // bounded private cart slots
		eb.seq++
		// TPC-W's cart interaction re-renders the cart page: several
		// reads surround the one slot update. The read-heavy shape
		// matters: it is why stripping non-first reads (MIN) shrinks
		// syncsets so much.
		return eb.txn(c,
			fmt.Sprintf("SELECT i_cost, i_stock FROM item WHERE i_id = %d", i),
			fmt.Sprintf("SELECT i_title, i_subject FROM item WHERE i_id = %d", i),
			fmt.Sprintf("SELECT sc_i_id, sc_qty FROM cart WHERE sc_id = %d", slot),
			fmt.Sprintf("DELETE FROM cart WHERE sc_id = %d", slot),
			fmt.Sprintf("INSERT INTO cart (sc_id, sc_c_id, sc_i_id, sc_qty) VALUES (%d, %d, %d, %d)",
				slot, eb.customer(), i, 1+eb.rng.Intn(3)),
			fmt.Sprintf("SELECT sc_i_id, sc_qty FROM cart WHERE sc_id = %d", slot),
		)
	case iBuyConfirm:
		return eb.buyConfirm(c)
	case iAdminUpdate:
		i := eb.item()
		return eb.txn(c,
			fmt.Sprintf("SELECT i_cost FROM item WHERE i_id = %d", i),
			fmt.Sprintf("SELECT i_title, i_subject, i_stock FROM item WHERE i_id = %d", i),
			fmt.Sprintf("UPDATE item SET i_cost = %d.%02d WHERE i_id = %d",
				1+eb.rng.Intn(99), eb.rng.Intn(100), i),
		)
	}
	return fmt.Errorf("tpcw: unknown interaction %v", it)
}

// buyConfirm is the heaviest update transaction: read the customer, pick
// 1-3 items, decrement stock (restocking below the threshold, as TPC-W
// does), and insert the order with its lines.
func (eb *EB) buyConfirm(c Execer) error {
	cid := eb.customer()
	nItems := 1 + eb.rng.Intn(3)
	oid := eb.nextID()

	// TPC-W's buy-confirm renders customer, address, and item details
	// before touching stock: reads dominate the statement count even in
	// the heaviest update transaction.
	stmts := []string{
		fmt.Sprintf("SELECT c_discount FROM customer WHERE c_id = %d", cid),
		fmt.Sprintf("SELECT c_uname, c_since FROM customer WHERE c_id = %d", cid),
	}
	total := 0
	for k := 0; k < nItems; k++ {
		i := eb.item()
		stmts = append(stmts,
			fmt.Sprintf("SELECT i_cost, i_stock FROM item WHERE i_id = %d", i),
			fmt.Sprintf("SELECT i_title, i_a_id FROM item WHERE i_id = %d", i),
			fmt.Sprintf("UPDATE item SET i_stock = i_stock - 1 WHERE i_id = %d", i),
		)
		if eb.rng.Intn(10) == 0 {
			// TPC-W restock rule, kept relative so replay stays
			// deterministic.
			stmts = append(stmts,
				fmt.Sprintf("UPDATE item SET i_stock = i_stock + 21 WHERE i_id = %d AND i_stock < 10", i))
		}
		total += 10 + k
	}
	stmts = append(stmts,
		fmt.Sprintf("INSERT INTO orders (o_id, o_c_id, o_date, o_total, o_status) VALUES (%d, %d, %d, %d.0, 'pending')",
			oid, cid, 20150531, total))
	for k := 0; k < nItems; k++ {
		stmts = append(stmts,
			fmt.Sprintf("INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty) VALUES (%d, %d, %d, 1)",
				oid*10+k, oid, eb.item()))
	}
	if err := eb.txn(c, stmts...); err != nil {
		return err
	}
	eb.lastOrder = oid
	return nil
}

// txn wraps stmts in BEGIN/COMMIT. On a server-side failure it returns the
// server error so the caller rolls back.
func (eb *EB) txn(c Execer, stmts ...string) error {
	if _, err := c.Exec("BEGIN"); err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := c.Exec(s); err != nil {
			return err
		}
	}
	res, err := c.Exec("COMMIT")
	if err != nil {
		return err
	}
	if res.Tag != "COMMIT" {
		return &wire.ServerError{Msg: "tpcw: transaction rolled back"}
	}
	return nil
}

// RunFleet launches n EBs against dial'd connections and blocks until ctx
// ends. dial opens a fresh connection per EB. It returns the first
// transport error, if any.
func RunFleet(ctx context.Context, n int, mix Mix, scale Scale, think time.Duration,
	dial func() (Execer, error), rec *metrics.Recorder) error {
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(id int) {
			conn, err := dial()
			if err != nil {
				errc <- err
				return
			}
			if closer, ok := conn.(interface{ Close() error }); ok {
				defer closer.Close()
			}
			eb := &EB{ID: id + 1, Mix: mix, Scale: scale, Think: think}
			errc <- eb.Run(ctx, conn, rec)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
