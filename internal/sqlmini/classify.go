package sqlmini

import (
	"fmt"
	"strings"
)

// OpClass is the middleware-level classification of one operation. Madeus
// only needs to know whether an operation reads, writes, or ends a
// transaction in order to apply the LSIR mapping function (Definition 2).
type OpClass int

// Operation classes.
const (
	OpRead   OpClass = iota // SELECT
	OpWrite                 // INSERT / UPDATE / DELETE
	OpBegin                 // BEGIN
	OpCommit                // COMMIT
	OpAbort                 // ROLLBACK / ABORT
	OpDDL                   // CREATE TABLE / DROP TABLE
)

func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpDDL:
		return "ddl"
	}
	return fmt.Sprintf("OpClass(%d)", int(c))
}

// ClassifyStatement classifies a parsed statement.
func ClassifyStatement(st Statement) OpClass {
	switch st.(type) {
	case *Select:
		return OpRead
	case *Insert, *Update, *Delete:
		return OpWrite
	case *Begin:
		return OpBegin
	case *Commit:
		return OpCommit
	case *Rollback:
		return OpAbort
	default:
		return OpDDL
	}
}

// ClassifyQuery classifies raw SQL text by its leading keyword without a
// full parse. This is the hot path in the middleware relay: it must be cheap
// because every customer operation passes through it (Sec 4.2, "picks up
// necessary information by parsing the operation").
func ClassifyQuery(sql string) (OpClass, error) {
	i := 0
	for i < len(sql) {
		switch sql[i] {
		case ' ', '\t', '\n', '\r', ';':
			i++
			continue
		}
		break
	}
	j := i
	for j < len(sql) && isAlpha(sql[j]) {
		j++
	}
	if j == i {
		return 0, fmt.Errorf("sqlmini: cannot classify %q", sql)
	}
	switch strings.ToUpper(sql[i:j]) {
	case "SELECT":
		return OpRead, nil
	case "INSERT", "UPDATE", "DELETE":
		return OpWrite, nil
	case "BEGIN":
		return OpBegin, nil
	case "COMMIT":
		return OpCommit, nil
	case "ROLLBACK", "ABORT":
		return OpAbort, nil
	case "CREATE", "DROP":
		return OpDDL, nil
	}
	return 0, fmt.Errorf("sqlmini: cannot classify %q", sql)
}
