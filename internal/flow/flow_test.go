package flow

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestValidateZeroValueDisabled(t *testing.T) {
	var cfg Config
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero Config must validate (fully disabled): %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig must validate: %v", err)
	}
}

func TestValidateRejectsEveryBadField(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"neg ssl syncsets", func(c *Config) { c.MaxSSLSyncsets = -1 }},
		{"neg ssl ops", func(c *Config) { c.MaxSSLOps = -1 }},
		{"neg ssl bytes", func(c *Config) { c.MaxSSLBytes = -1 }},
		{"neg target debt", func(c *Config) { c.PaceTargetDebt = -1 }},
		{"neg pace step", func(c *Config) { c.PaceStep = -time.Millisecond }},
		{"neg pace max", func(c *Config) { c.PaceMaxDelay = -1 }},
		{"pace max over ceiling", func(c *Config) { c.PaceMaxDelay = MaxPaceDelay + 1 }},
		{"pacing without step", func(c *Config) { c.PaceMaxDelay = time.Millisecond; c.PaceStep = 0 }},
		{"step over ceiling", func(c *Config) { c.PaceStep = MaxPaceDelay + 1 }},
		{"neg decay", func(c *Config) { c.PaceDecay = -0.1 }},
		{"decay >= 1", func(c *Config) { c.PaceDecay = 1.0 }},
		{"neg deadline", func(c *Config) { c.Deadline = -1 }},
		{"neg stall window", func(c *Config) { c.StallWindow = -1 }},
		{"neg sessions", func(c *Config) { c.MaxSessions = -1 }},
		{"neg queue", func(c *Config) { c.AdmitQueue = -1 }},
		{"queue without cap", func(c *Config) { c.AdmitQueue = 4; c.MaxSessions = 0 }},
		{"neg admit timeout", func(c *Config) { c.AdmitTimeout = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
}

func TestGovernorSetRoundTrip(t *testing.T) {
	g, err := NewGovernor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Every knob must be settable and render back.
	want := map[string]string{
		"max_ssl_syncsets":   "10",
		"max_ssl_ops":        "100",
		"max_ssl_bytes":      "4096",
		"pace_target_debt":   "8",
		"pace_step":          "2ms",
		"pace_max_delay":     "20ms",
		"pace_decay":         "0.25",
		"max_transfer_bytes": "1048576",
		"deadline":           "1m0s",
		"stall_window":       "5s",
		"max_sessions":       "3",
		"admit_queue":        "2",
		"admit_timeout":      "100ms",
	}
	// pace_max_delay needs pace_step first; max_sessions before admit_queue.
	order := []string{"pace_step", "pace_max_delay", "max_sessions", "admit_queue"}
	for _, k := range order {
		if err := g.Set(k, want[k]); err != nil {
			t.Fatalf("Set(%s): %v", k, err)
		}
	}
	for k, v := range want {
		if err := g.Set(k, v); err != nil {
			t.Fatalf("Set(%s, %s): %v", k, v, err)
		}
	}
	cfg := g.Config()
	for _, k := range KnobNames() {
		if got := cfg.Knob(k); got != want[k] {
			t.Errorf("knob %s = %q, want %q", k, got, want[k])
		}
	}
	if err := g.Set("pace_decay", "2"); err == nil {
		t.Fatal("Set must re-validate: pace_decay 2 accepted")
	}
	if err := g.Set("no_such_knob", "1"); err == nil {
		t.Fatal("unknown knob accepted")
	}
	if err := g.Set("deadline", "not-a-duration"); err == nil {
		t.Fatal("unparseable value accepted")
	}
	if cfg := g.Config(); cfg.PaceDecay != 0.25 {
		t.Fatalf("failed Set mutated config: decay %v", cfg.PaceDecay)
	}
}

func TestControllerLaw(t *testing.T) {
	cfg := Config{
		PaceTargetDebt: 10,
		PaceStep:       time.Millisecond,
		PaceMaxDelay:   8 * time.Millisecond,
		PaceDecay:      0.5,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c := NewController(cfg)

	// Below target: stays open.
	if d := c.Tick(5); d != 0 {
		t.Fatalf("below target: delay %v, want 0", d)
	}
	// First sample above target: ramp seeds at PaceStep.
	if d := c.Tick(20); d != time.Millisecond {
		t.Fatalf("ramp seed: %v, want 1ms", d)
	}
	// Still diverging: multiplicative increase.
	if d := c.Tick(30); d != 2*time.Millisecond {
		t.Fatalf("MI step: %v, want 2ms", d)
	}
	if d := c.Tick(40); d != 4*time.Millisecond {
		t.Fatalf("MI step: %v, want 4ms", d)
	}
	// Shrinking but above target: hold.
	if d := c.Tick(35); d != 4*time.Millisecond {
		t.Fatalf("hold: %v, want 4ms", d)
	}
	// Diverging again: keep doubling, clamp at max.
	if d := c.Tick(50); d != 8*time.Millisecond {
		t.Fatalf("MI step: %v, want 8ms", d)
	}
	if d := c.Tick(60); d != 8*time.Millisecond {
		t.Fatalf("clamp: %v, want 8ms", d)
	}
	// Converged: multiplicative decay, then snap to zero.
	if d := c.Tick(10); d != 4*time.Millisecond {
		t.Fatalf("decay: %v, want 4ms", d)
	}
	if d := c.Tick(8); d != 2*time.Millisecond {
		t.Fatalf("decay: %v, want 2ms", d)
	}
	if d := c.Tick(3); d != time.Millisecond {
		t.Fatalf("decay: %v, want 1ms", d)
	}
	if d := c.Tick(0); d != 0 {
		t.Fatalf("snap to zero: %v, want 0", d)
	}

	// Pacing disabled: always zero regardless of debt.
	off := NewController(Config{})
	for _, debt := range []int{0, 100, 100000} {
		if d := off.Tick(debt); d != 0 {
			t.Fatalf("disabled controller returned %v for debt %d", d, debt)
		}
	}
}

func TestThrottleClampAndIdle(t *testing.T) {
	var th Throttle
	th.Set(-time.Second)
	if d := th.Delay(); d != 0 {
		t.Fatalf("negative Set: delay %v", d)
	}
	th.Set(time.Hour)
	if d := th.Delay(); d != MaxPaceDelay {
		t.Fatalf("ceiling clamp: delay %v, want %v", d, time.Duration(MaxPaceDelay))
	}
	th.Set(0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		th.Wait()
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("idle Wait too slow: %v for 1000 calls", el)
	}
	th.Set(5 * time.Millisecond)
	start = time.Now()
	th.Wait()
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("armed Wait returned after %v, want >= ~5ms", el)
	}
}

func TestWatchdogDeadline(t *testing.T) {
	start := time.Now()
	w := NewWatchdog(Config{Deadline: time.Minute}, start)
	if err := w.Check(start.Add(59 * time.Second)); err != nil {
		t.Fatalf("before deadline: %v", err)
	}
	if err := w.Check(start.Add(61 * time.Second)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("past deadline: %v, want ErrDeadline", err)
	}
}

func TestWatchdogStall(t *testing.T) {
	start := time.Now()
	w := NewWatchdog(Config{StallWindow: 10 * time.Second}, start)
	w.Observe(0, 100, start)
	// Applied advances: progress.
	w.Observe(1, 100, start.Add(8*time.Second))
	if err := w.Check(start.Add(12 * time.Second)); err != nil {
		t.Fatalf("progress at t+8 must reset the stall clock: %v", err)
	}
	// Debt reaches a new low: progress even with applied flat.
	w.Observe(1, 90, start.Add(16*time.Second))
	if err := w.Check(start.Add(20 * time.Second)); err != nil {
		t.Fatalf("debt low at t+16 must reset the stall clock: %v", err)
	}
	// Nothing moves: stall fires after the window.
	w.Observe(1, 90, start.Add(20*time.Second))
	w.Observe(1, 95, start.Add(24*time.Second)) // debt rising is not progress
	if err := w.Check(start.Add(25 * time.Second)); err != nil {
		t.Fatalf("window not yet elapsed: %v", err)
	}
	if err := w.Check(start.Add(27 * time.Second)); !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled: %v, want ErrStalled", err)
	}

	// Disabled watchdog never fires.
	idle := NewWatchdog(Config{}, start)
	idle.Observe(0, 100, start)
	if err := idle.Check(start.Add(24 * time.Hour)); err != nil {
		t.Fatalf("disabled watchdog fired: %v", err)
	}
}

func TestLimiterUnlimitedFastPath(t *testing.T) {
	g, _ := NewGovernor(Config{})
	l := NewLimiter("a", g)
	for i := 0; i < 100; i++ {
		release, err := l.Admit()
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if n := l.InUse(); n != 0 {
		t.Fatalf("unlimited path leaked slots: %d", n)
	}
}

func TestLimiterCapQueueShed(t *testing.T) {
	g, err := NewGovernor(Config{MaxSessions: 2, AdmitQueue: 1, AdmitTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLimiter("a", g)

	r1, err := l.Admit()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if n := l.InUse(); n != 2 {
		t.Fatalf("inUse %d, want 2", n)
	}

	// Third session queues; release hands it the slot.
	got := make(chan error, 1)
	var r3 func()
	go func() {
		var e error
		r3, e = l.Admit()
		got <- e
	}()
	waitFor(t, func() bool { return l.Waiting() == 1 })

	// Fourth overflows the queue: immediate typed shed.
	if _, err := l.Admit(); err == nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue overflow: %v, want ErrOverloaded", err)
	} else {
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.Reason != ReasonQueueFull || oe.Tenant != "a" {
			t.Fatalf("overflow error detail: %#v", err)
		}
		if !strings.Contains(oe.Error(), "overloaded") {
			t.Fatalf("error text: %q", oe.Error())
		}
	}

	r1() // hand the slot to the queued waiter
	if e := <-got; e != nil {
		t.Fatalf("queued admit: %v", e)
	}
	if n := l.InUse(); n != 2 {
		t.Fatalf("after handoff inUse %d, want 2", n)
	}
	r2()
	r3()
	if n := l.InUse(); n != 0 {
		t.Fatalf("after release inUse %d, want 0", n)
	}
	if n := l.Waiting(); n != 0 {
		t.Fatalf("after drain waiting %d, want 0", n)
	}
}

func TestLimiterAdmitTimeout(t *testing.T) {
	g, err := NewGovernor(Config{MaxSessions: 1, AdmitQueue: 4, AdmitTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLimiter("a", g)
	release, err := l.Admit()
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, err = l.Admit()
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonAdmitTimeout {
		t.Fatalf("queued admit past timeout: %v, want admit-timeout overload", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond || el > 2*time.Second {
		t.Fatalf("timeout waited %v, want ~30ms", el)
	}
	if n := l.Waiting(); n != 0 {
		t.Fatalf("timed-out waiter still queued: %d", n)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
