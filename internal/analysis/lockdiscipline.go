package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockDiscipline flags blocking operations performed while a named mutex is
// held, and Lock calls with no matching Unlock later in the function.
//
// Blocking operations: channel send/receive, select without default,
// WaitGroup/propagator-style Wait, time.Sleep, net dial/listen, simlat.IO,
// WAL fsync/Commit, and wire.Client.Exec (a network round-trip).
// sync.Cond.Wait is exempt — it releases the mutex while waiting, which is
// exactly the sanctioned pattern (tenant critical region, B-CON herd).
//
// The check is an intra-procedural approximation: branch bodies are scanned
// with a copy of the held-lock set, sequential statements thread it through,
// and an Unlock anywhere later in the function satisfies the release
// obligation. Helpers that intentionally return holding a lock belong on a
// `Locked`-suffixed name or under a //madeusvet:ignore directive.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking calls while a mutex is held; every Lock needs a path to Unlock",
	Run:  runLockDiscipline,
}

// lockOp is one Lock/Unlock-family call on a rendered lock expression.
type lockOp struct {
	key    string // rendered lock expr, e.g. "t.mu"
	method string // Lock, Unlock, RLock, RUnlock
	pos    token.Pos
	defer_ bool
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockRelease(pass, fn)
			s := &lockScanner{pass: pass}
			s.stmts(fn.Body.List, map[string]token.Pos{})
		}
	}
}

// lockCall classifies a call as a Lock/Unlock-family operation on a
// mutex-like receiver; ok is false otherwise.
func lockCall(pass *Pass, call *ast.CallExpr) (op lockOp, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return op, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return op, false
	}
	key := exprString(sel.X)
	if key == "" {
		return op, false
	}
	if !isMutexExpr(pass, sel.X, key) {
		return op, false
	}
	return lockOp{key: key, method: sel.Sel.Name, pos: call.Pos()}, true
}

// isMutexExpr reports whether e looks like a mutex: sync.Mutex/RWMutex by
// type when info is available, or a mu-ish name otherwise.
func isMutexExpr(pass *Pass, e ast.Expr, rendered string) bool {
	if t := pass.TypeOf(e); t != nil {
		return isSyncType(t, "Mutex") || isSyncType(t, "RWMutex")
	}
	last := rendered
	if i := strings.LastIndexByte(last, '.'); i >= 0 {
		last = last[i+1:]
	}
	lower := strings.ToLower(last)
	return lower == "mu" || strings.HasSuffix(lower, "mu") || strings.HasSuffix(lower, "mutex") || strings.HasSuffix(lower, "lock")
}

// checkLockRelease verifies every Lock in fn has a matching Unlock of the
// same lock later in source order (or deferred anywhere).
func checkLockRelease(pass *Pass, fn *ast.FuncDecl) {
	var ops []lockOp
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if op, ok := lockCall(pass, n); ok {
				ops = append(ops, op)
			}
		case *ast.DeferStmt:
			if op, ok := lockCall(pass, n.Call); ok {
				op.defer_ = true
				ops = append(ops, op)
			}
			return false // the deferred call was handled; skip re-visiting
		}
		return true
	})
	release := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	for _, op := range ops {
		want, isAcquire := release[op.method]
		if !isAcquire {
			continue
		}
		found := false
		for _, other := range ops {
			if other.key == op.key && other.method == want && (other.defer_ || other.pos > op.pos) {
				found = true
				break
			}
		}
		if !found {
			pass.Reportf(op.pos, "%s.%s() with no %s on any later path in %s; helpers that return holding the lock need a Locked suffix or an ignore directive",
				op.key, op.method, want, fn.Name.Name)
		}
	}
}

// lockScanner walks statements tracking which locks are held.
type lockScanner struct {
	pass *Pass
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (s *lockScanner) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *lockScanner) stmt(st ast.Stmt, held map[string]token.Pos) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, ok := lockCall(s.pass, call); ok {
				switch op.method {
				case "Lock", "RLock":
					held[op.key] = op.pos
				case "Unlock", "RUnlock":
					delete(held, op.key)
				}
				return
			}
		}
		s.expr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock satisfies the release obligation but runs only
		// at return — the lock stays held through the rest of the function,
		// so the held set keeps it.
	case *ast.GoStmt:
		// The goroutine does not run under the caller's locks; argument
		// evaluation is non-blocking.
	case *ast.SendStmt:
		s.reportBlocked(st.Pos(), "channel send", held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.reportBlocked(st.Pos(), "select", held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.stmts(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		body := copyHeld(held)
		s.stmts(st.Body.List, body)
		// A loop body that acquires a lock and loops back still holds it
		// at the next blocking op; merge acquisitions that survived the
		// body into the loop's view. (Releases inside branches were
		// handled within the copy.)
		for k, v := range body {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	case *ast.RangeStmt:
		s.expr(st.X, held)
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	}
}

// expr reports blocking operations inside e (receives and blocking calls),
// without descending into func literals — their bodies run elsewhere.
func (s *lockScanner) expr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.reportBlocked(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if kind, ok := s.blockingCall(n); ok {
				s.reportBlocked(n.Pos(), kind, held)
			}
		}
		return true
	})
}

func (s *lockScanner) reportBlocked(pos token.Pos, kind string, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	s.pass.Reportf(pos, "%s while holding %s", kind, strings.Join(keys, ", "))
}

// blockingCall classifies calls that can block the goroutine.
func (s *lockScanner) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if base, ok := sel.X.(*ast.Ident); ok {
		// Package-qualified calls.
		switch base.Name + "." + name {
		case "time.Sleep":
			return "time.Sleep", true
		case "simlat.IO":
			return "simulated I/O (simlat.IO)", true
		case "net.Dial", "net.DialTimeout", "net.Listen":
			return "net." + name, true
		}
	}
	recvType := s.pass.TypeOf(sel.X)
	switch name {
	case "Wait":
		// sync.Cond.Wait releases the mutex — the sanctioned pattern.
		if recvType != nil {
			if isSyncType(recvType, "Cond") {
				return "", false
			}
			return "Wait", true
		}
		if strings.Contains(strings.ToLower(exprString(sel.X)), "cond") {
			return "", false
		}
		return "Wait", true
	case "fsync", "Fsync":
		return "WAL fsync", true
	case "Commit":
		if n := namedType(recvType); n != nil && n.Obj().Pkg() != nil &&
			strings.HasSuffix(n.Obj().Pkg().Path(), "internal/wal") && n.Obj().Name() == "Log" {
			return "WAL group-commit wait", true
		}
	case "Exec":
		if n := namedType(recvType); n != nil && n.Obj().Pkg() != nil &&
			strings.HasSuffix(n.Obj().Pkg().Path(), "internal/wire") && n.Obj().Name() == "Client" {
			return "wire round-trip (Client.Exec)", true
		}
	}
	return "", false
}
