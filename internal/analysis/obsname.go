package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsName polices observability identifiers: the name handed to an obs
// metric constructor (NewCounter, NewGauge, NewGaugeFunc, NewHistogram —
// package-level or on a Registry) and the event name handed to a trace
// emission (Tracer.Emit, EmitDur, Start) must be a string literal or a
// package constant, never built at the call site.
//
// The names are the schema of the admin surface: dashboards, verify.sh
// greps, and the Prometheus exposition all key on them. A name computed
// with fmt.Sprintf or string concatenation of a variable cannot be grepped
// for, can collide at runtime (the Registry panics on duplicates), and on
// the Tracer it allocates on the hot path before the enabled gate is even
// consulted.
//
// Dynamic names have exactly one sanctioned door: Registry.ReplaceGaugeFunc
// (used for the per-tenant core.tenant.<name>.* gauges), which carries
// replace-not-panic semantics precisely so runtime-composed names are safe
// there. Replace*/Unregister* methods are therefore exempt, as is the
// internal/obs package itself (it manipulates names generically).
//
// With type information the check is exact: any expression the type checker
// constant-folds (literals, consts, concatenations of consts) passes.
// Degraded packages fall back to an AST heuristic that accepts literals and
// plain identifiers/selectors.
var ObsName = &Analyzer{
	Name: "obsname",
	Doc:  "obs metric and trace-event names must be string literals or package constants (ReplaceGaugeFunc is the one dynamic-name API)",
	Run:  runObsName,
}

// obsNameArg maps the checked obs call names to the index of their name
// argument: constructors take the metric name first; trace emissions take
// (tenant, name, ...), so the event name is second.
var obsNameArg = map[string]int{
	"NewCounter":   0,
	"NewGauge":     0,
	"NewGaugeFunc": 0,
	"NewHistogram": 0,
	"Emit":         1,
	"EmitDur":      1,
	"Start":        1,
}

func runObsName(pass *Pass) {
	if strings.HasSuffix(pass.PkgPath, "internal/obs") {
		return // the obs package itself handles names generically
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			idx, ok := obsNameArg[sel.Sel.Name]
			if !ok || len(call.Args) <= idx {
				return true
			}
			if !isObsCall(pass, sel) {
				return true
			}
			arg := call.Args[idx]
			if isConstantName(pass, arg) {
				return true
			}
			kind := "metric"
			if idx == 1 {
				kind = "trace event"
			}
			pass.Reportf(arg.Pos(),
				"%s name passed to %s is computed at the call site; use a string literal or package constant (dynamic names go through Registry.ReplaceGaugeFunc)",
				kind, sel.Sel.Name)
			return true
		})
	}
}

// isObsCall reports whether sel resolves to the obs package: either a
// package-qualified call (obs.NewCounter) or a method on an obs-declared
// type (Registry, Tracer, Scope fields included). Without type info it
// falls back to requiring an `obs`-named qualifier somewhere in the chain.
func isObsCall(pass *Pass, sel *ast.SelectorExpr) bool {
	if pass.Info != nil {
		// Package-qualified function call.
		if ident, ok := sel.X.(*ast.Ident); ok {
			if obj, resolved := pass.Info.Uses[ident]; resolved {
				if pn, isPkg := obj.(*types.PkgName); isPkg {
					return strings.HasSuffix(pn.Imported().Path(), "internal/obs")
				}
			}
		}
		// Method call: resolve the receiver's declaring package.
		if tv, ok := pass.Info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
			}
			return false
		}
		return false
	}
	// Degraded: accept `obs.X(...)` and chains routed through an
	// identifier named obs (obs.Default.NewCounter, obs.Trace.Emit).
	for x := sel.X; ; {
		switch v := x.(type) {
		case *ast.Ident:
			return v.Name == "obs"
		case *ast.SelectorExpr:
			x = v.X
		default:
			return false
		}
	}
}

// isConstantName reports whether the type checker folded e to a constant
// (exact when type info is present), falling back to accepting literals and
// plain identifier/selector references.
func isConstantName(pass *Pass, e ast.Expr) bool {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[e]; ok {
			return tv.Value != nil
		}
	}
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		_, isIdent := v.X.(*ast.Ident)
		return isIdent
	}
	return false
}
