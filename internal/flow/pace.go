package flow

import (
	"sync/atomic"
	"time"

	"madeus/internal/fault"
	"madeus/internal/obs"
)

// faultPaceWait lets the chaos suite observe or distort the commit-side
// pace point (e.g. inflate delays to prove the MaxPaceDelay clamp holds
// end to end).
const faultPaceWait = "flow.pace.wait"

// Throttle is the per-tenant commit brake. The migration manager's
// controller Sets it; every source-side commit of that tenant calls Wait.
// Idle (delay 0, the steady state and the disabled state) it costs one
// atomic load — the same contract as an unarmed fault site.
type Throttle struct {
	delay atomic.Int64 // nanoseconds; 0 = open
}

// Set installs a new per-commit delay, clamped to [0, MaxPaceDelay].
func (th *Throttle) Set(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if d > MaxPaceDelay {
		d = MaxPaceDelay
	}
	th.delay.Store(int64(d))
	obsPaceGauge.Set(int64(d))
}

// Delay returns the currently applied per-commit delay.
func (th *Throttle) Delay() time.Duration { return time.Duration(th.delay.Load()) }

// Wait applies the current delay, if any. The single atomic load up front
// is the whole cost when pacing is off.
func (th *Throttle) Wait() {
	d := th.delay.Load()
	if d == 0 {
		return
	}
	_ = fault.Inject(faultPaceWait) // latency-only site: errors have nowhere to go mid-commit
	// Re-clamp at the spend site: the ceiling holds even if a future
	// writer bypasses Set.
	if d > int64(MaxPaceDelay) {
		d = int64(MaxPaceDelay)
	}
	time.Sleep(time.Duration(d))
	if obs.On() {
		obsPaceDelay.ObserveDuration(time.Duration(d))
	}
}

// Controller turns the Step-3 debt trend into a pace delay. The law is
// MIMD (multiplicative increase, multiplicative decrease), chosen because
// debt growth is itself multiplicative in the commit-rate/replay-rate
// ratio:
//
//   - debt above target and not shrinking → delay = max(PaceStep, 2·delay),
//     clamped to PaceMaxDelay. Each doubling cuts the source commit rate
//     further; since the slave's replay rate is workload-independent, some
//     finite delay always drives commit rate below replay rate, so debt
//     must eventually fall — that is the convergence guarantee.
//   - debt above target but shrinking by at least 1/16 of its value per
//     tick → hold: the brake is already biting hard enough to drain the
//     backlog in a bounded number of ticks. A slower shrink still counts
//     as diverging — without the rate floor the controller parks at the
//     first delay with any drain at all and the tail takes minutes.
//   - debt at or below target → delay *= PaceDecay, snapping to 0 below
//     PaceStep, returning the tenant to full speed.
//
// Tick is called from the manager's Step-3 sampling loop, never
// concurrently; only the Throttle it feeds is shared.
type Controller struct {
	cfg      Config
	delay    time.Duration
	prevDebt int
	primed   bool
}

// NewController builds a controller for one migration from a validated
// config snapshot.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg}
}

// Tick feeds one debt sample and returns the delay to apply until the
// next sample. A controller with pacing disabled always returns 0.
func (c *Controller) Tick(debt int) time.Duration {
	if c.cfg.PaceMaxDelay == 0 {
		return 0
	}
	defer func() {
		c.prevDebt = debt
		c.primed = true
	}()
	switch {
	case debt <= c.cfg.PaceTargetDebt:
		// Converged (or never diverged): back off multiplicatively.
		c.delay = time.Duration(float64(c.delay) * c.cfg.PaceDecay)
		if c.delay < c.cfg.PaceStep {
			c.delay = 0
		}
	case c.primed && debt < c.prevDebt-c.prevDebt/16:
		// Above target and shrinking geometrically: hold the delay.
		// (For prevDebt < 16 the floor is 0 and any shrink holds.)
	default:
		// Diverging (or first sample above target): tighten.
		if c.delay == 0 {
			c.delay = c.cfg.PaceStep
		} else {
			c.delay *= 2
		}
		if c.delay > c.cfg.PaceMaxDelay {
			c.delay = c.cfg.PaceMaxDelay
		}
	}
	return c.delay
}

// Delay returns the controller's current output without feeding a sample.
func (c *Controller) Delay() time.Duration { return c.delay }
