package engine

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"madeus/internal/invariant"
	"madeus/internal/obs"
	"madeus/internal/wal"
)

var (
	obsRecoverDur     = obs.NewHistogram("engine.recover.duration", "crash-recovery wall time", obs.DurationBuckets())
	obsRecoverRecords = obs.NewCounter("engine.recover.records", "WAL records scanned during recovery")
	obsRecoverUnits   = obs.NewCounter("engine.recover.units", "redo units applied during recovery")
)

// RecoveryStats summarizes the recovery pass Open performed.
type RecoveryStats struct {
	Duration      time.Duration
	CheckpointLSN uint64 // checkpoint the pass started from (0: none on disk)
	AppliedLSN    uint64 // highest redo unit LSN applied
	Segments      int    // WAL segment files scanned
	Records       uint64 // WAL records decoded
	Bytes         int64  // WAL bytes scanned
	Units         int    // redo units emitted by the scan
	Applied       int    // redo units actually applied (past the checkpoint)
}

// LastRecovery reports the recovery pass this engine ran at Open (zero value
// for a fresh data dir or an in-memory engine).
func (e *Engine) LastRecovery() RecoveryStats { return e.lastRecovery }

// recover rebuilds the engine's state from DataDir: load the checkpoint
// named by CURRENT (if any), then redo the WAL suffix past the checkpoint
// LSN. It runs with e.recovering set, which routes replayed statements
// through the normal execution path with WAL appends, commit fsyncs, and
// the CPU-slot cost suppressed. When it returns, the MVCC-visible state is
// exactly the committed prefix the log acknowledged before the crash.
func (e *Engine) recover() error {
	start := time.Now()
	e.recovering.Store(true)
	defer e.recovering.Store(false)
	obs.Trace.Emit("", "recover.begin", obs.F("dir", e.opts.DataDir))

	ckptLSN, err := e.loadCheckpoint()
	if err != nil {
		return fmt.Errorf("engine: recover: %w", err)
	}
	e.ckptLSN.Store(ckptLSN)
	e.appliedLSN.Store(ckptLSN)
	// If the checkpoint retired every WAL segment, the reopened log is
	// empty and its LSN counter restarted at zero; pull it up so new
	// records continue the global sequence past the checkpointed prefix.
	e.log.AdvanceLSN(ckptLSN)

	sessions := make(map[string]*Session)
	applied := 0
	stats, err := e.log.Replay(func(u wal.Unit) error {
		ok, aerr := e.applyUnit(sessions, u)
		if aerr != nil {
			return aerr
		}
		if ok {
			applied++
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("engine: recover: %w", err)
	}
	e.checkCkptLSN(ckptLSN)
	// Redo must be idempotent: a second replay over the same log finds no
	// unit past the applied LSN, so replaying twice is a no-op.
	invariant.Check(e.checkRedoIdempotent)

	e.lastRecovery = RecoveryStats{
		Duration:      time.Since(start),
		CheckpointLSN: ckptLSN,
		AppliedLSN:    e.appliedLSN.Load(),
		Segments:      stats.Segments,
		Records:       stats.Records,
		Bytes:         stats.Bytes,
		Units:         stats.Units,
		Applied:       applied,
	}
	obsRecoverDur.ObserveDuration(e.lastRecovery.Duration)
	obsRecoverRecords.Add(stats.Records)
	obsRecoverUnits.Add(uint64(applied))
	obs.Trace.Emit("", "recover.end",
		obs.F("ckpt_lsn", ckptLSN), obs.F("applied_lsn", e.lastRecovery.AppliedLSN),
		obs.F("records", stats.Records), obs.F("units", applied),
		obs.F("bytes", stats.Bytes), obs.F("ms", e.lastRecovery.Duration.Milliseconds()))
	return nil
}

// checkRedoIdempotent re-replays the whole log and reports an error if any
// redo unit lies past the applied LSN: after a recovery pass, a second
// replay must be a no-op. Called under invariant.Check at the end of
// recover (a read-only scan; the engine is not serving traffic yet).
func (e *Engine) checkRedoIdempotent() error {
	extra := 0
	if _, err := e.log.Replay(func(u wal.Unit) error {
		if u.LSN > e.appliedLSN.Load() {
			extra++
		}
		return nil
	}); err != nil {
		return err
	}
	if extra > 0 {
		return fmt.Errorf("engine: double replay found %d unapplied units past LSN %d — redo is not idempotent", extra, e.appliedLSN.Load())
	}
	return nil
}

// applyUnit redoes one committed unit, reporting whether it was applied
// (false: at or before the applied LSN already — the gate that makes redo
// idempotent). sessions caches one recovery session per tenant.
func (e *Engine) applyUnit(sessions map[string]*Session, u wal.Unit) (bool, error) {
	if u.LSN <= e.appliedLSN.Load() {
		return false, nil
	}
	if u.Kind == wal.RecDDL && len(u.Stmts) == 1 {
		// Catalog DDL is engine-level, not executable through a tenant
		// session; table-level DDL falls through to the session path.
		if name, ok := strings.CutPrefix(u.Stmts[0], "CREATE DATABASE "); ok {
			if err := e.CreateDatabase(name); err != nil {
				return false, fmt.Errorf("engine: redo LSN %d: %w", u.LSN, err)
			}
			e.appliedLSN.Store(u.LSN)
			return true, nil
		}
		if name, ok := strings.CutPrefix(u.Stmts[0], "DROP DATABASE "); ok {
			delete(sessions, name)
			if err := e.DropDatabase(name); err != nil {
				return false, fmt.Errorf("engine: redo LSN %d: %w", u.LSN, err)
			}
			e.appliedLSN.Store(u.LSN)
			return true, nil
		}
	}
	sess := sessions[u.DB]
	if sess == nil {
		var err error
		sess, err = e.NewSession(u.DB)
		if err != nil {
			return false, fmt.Errorf("engine: redo LSN %d: %w", u.LSN, err)
		}
		sessions[u.DB] = sess
	}
	for _, stmt := range u.Stmts {
		if _, err := sess.Exec(stmt); err != nil {
			return false, fmt.Errorf("engine: redo LSN %d (%.80s): %w", u.LSN, stmt, err)
		}
	}
	e.appliedLSN.Store(u.LSN)
	return true, nil
}

// loadCheckpoint restores the checkpoint named by DataDir/CURRENT and
// returns its LSN; (0, nil) when no checkpoint exists yet.
func (e *Engine) loadCheckpoint() (uint64, error) {
	cur, err := os.ReadFile(filepath.Join(e.opts.DataDir, currentFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	dir := filepath.Join(e.opts.DataDir, strings.TrimSpace(string(cur)))
	mb, err := os.ReadFile(filepath.Join(dir, ckptMetaFile))
	if err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w", dir, err)
	}
	var meta ckptMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return 0, fmt.Errorf("checkpoint %s: %w", dir, err)
	}
	for i, name := range meta.DBs {
		if err := e.CreateDatabase(name); err != nil {
			return 0, err
		}
		sess, err := e.NewSession(name)
		if err != nil {
			return 0, err
		}
		if err := loadCheckpointDB(filepath.Join(dir, fmt.Sprintf("db-%d.tbl", i)), sess); err != nil {
			return 0, fmt.Errorf("checkpoint %s (%s): %w", dir, name, err)
		}
	}
	return meta.LSN, nil
}

// loadCheckpointDB replays one tenant's framed statement file through a
// recovery session. Checkpoint files were fully synced before CURRENT
// flipped, so a torn or corrupt frame here is a hard error, never a
// truncation point.
func loadCheckpointDB(path string, sess *Session) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		payload, err := wal.ReadFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if _, err := sess.Exec(string(payload)); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
}
