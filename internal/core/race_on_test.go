//go:build race

package core

// raceEnabled reports that this test binary was built with the race
// detector; throughput-calibrated overload scenarios skip themselves
// because instrumented writers cannot generate the write pressure the
// divergence assertions are calibrated against.
const raceEnabled = true
