package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder checks every lock acquisition — including acquisitions reached
// through calls, over the whole-load call graph — against the hierarchy
// declared by //madeusvet:lockrank annotations (DESIGN.md §5a/§5f): while a
// ranked mutex is held, only strictly higher-ranked mutexes may be
// acquired. It reports three shapes of finding:
//
//   - rank inversions: acquiring rank <= held rank, with the call chain and,
//     when the edge closes a cycle, the full acquisition cycle;
//   - re-acquisition self-deadlocks: taking a mutex already held (shared
//     RLock->RLock re-entry is exempt);
//   - acquisition cycles among unranked (but identity-resolved) mutexes,
//     which are deadlocks the rank table does not yet name.
//
// Edges are built conservatively at interface call sites and not at all at
// dynamic func values — see the soundness note in callgraph.go.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "cross-function lock acquisitions must follow the declared //madeusvet:lockrank hierarchy; no acquisition cycles",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	all := prog.cached("lockorder", func() []Diagnostic {
		return lockOrderFindings(prog)
	})
	pass.adoptOwned(all)
}

// lockEdge: `to` can be acquired while `from` is held, at pos inside fn
// (directly, or through chain ending at acqPos).
type lockEdge struct {
	from, to         types.Object
	fromMeth, toMeth string
	pos              token.Pos // site in fn (acquisition or call)
	acqPos           token.Pos // ultimate acquisition site
	fn               *FuncInfo
	chain            []string // call chain when indirect
}

func lockOrderFindings(prog *Program) []Diagnostic {
	var out []Diagnostic
	out = append(out, prog.Ranks.problems...)

	edges := collectLockEdges(prog)
	cycles := findLockCycles(prog, edges)

	// Cycle membership per (from,to) pair, so an inversion that closes a
	// cycle carries the whole cycle in its message.
	type pair struct{ from, to types.Object }
	cycleOf := make(map[pair][]lockEdge)
	for _, cyc := range cycles {
		for _, e := range cyc {
			p := pair{e.from, e.to}
			if _, ok := cycleOf[p]; !ok {
				cycleOf[p] = cyc
			}
		}
	}

	seen := make(map[string]bool)
	cycleReported := make(map[string]bool)
	for _, e := range edges {
		fromRank, fromRanked := prog.Ranks.Rank(e.from)
		toRank, toRanked := prog.Ranks.Rank(e.to)
		var msg string
		switch {
		case e.from == e.to:
			if e.fromMeth == "RLock" && (e.toMeth == "RLock" || e.toMeth == "") {
				continue // shared-mode re-entry
			}
			if fromRanked && fromRank.Striped {
				// Striped locks have many instances: acquiring another
				// stripe of the same field is legal when index-ordered.
				// The stripeorder analyzer owns that discipline.
				continue
			}
			msg = fmt.Sprintf("re-acquires %s already held since %s — self-deadlock%s",
				prog.lockDesc(e.to, ""), prog.position(e.fn, e.pos), chainText(e))
		case fromRanked && toRanked && toRank.Rank <= fromRank.Rank:
			msg = fmt.Sprintf("lock order violation: acquiring %s (rank %d)%s while holding %s (rank %d); the declared hierarchy requires strictly increasing rank",
				toRank.Name, toRank.Rank, chainText(e), fromRank.Name, fromRank.Rank)
			if cyc := cycleOf[pair{e.from, e.to}]; cyc != nil {
				msg += "; acquisition cycle: " + prog.cycleText(cyc)
				cycleReported[cycleKey(prog, cyc)] = true
			}
		default:
			continue
		}
		key := fmt.Sprintf("%v|%v|%v", e.from, e.to, e.pos)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Diagnostic{
			Pos:     prog.Fset.Position(e.pos),
			Rule:    "lockorder",
			Message: msg,
		})
	}

	// Cycles not already surfaced through an inversion edge (e.g. among
	// unranked mutexes) get their own finding, anchored at the first edge.
	for _, cyc := range cycles {
		if cycleReported[cycleKey(prog, cyc)] {
			continue
		}
		cycleReported[cycleKey(prog, cyc)] = true
		anchor := cyc[0]
		out = append(out, Diagnostic{
			Pos:     prog.Fset.Position(anchor.pos),
			Rule:    "lockorder",
			Message: "lock acquisition cycle (deadlock): " + prog.cycleText(cyc),
		})
	}
	return out
}

func (prog *Program) position(fn *FuncInfo, pos token.Pos) string {
	p := prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func chainText(e lockEdge) string {
	if len(e.chain) == 0 {
		return ""
	}
	return " via " + strings.Join(e.chain, " → ")
}

// cycleText renders "tenant → wal (acquired at wal.go:182 in wal.(*Log).Commit) → tenant".
func (prog *Program) cycleText(cyc []lockEdge) string {
	var b strings.Builder
	for i, e := range cyc {
		if i == 0 {
			b.WriteString(prog.lockDesc(e.from, ""))
		}
		p := prog.Fset.Position(e.acqPos)
		fmt.Fprintf(&b, " → %s (acquired at %s:%d in %s%s)",
			prog.lockDesc(e.to, ""), shortFile(p.Filename), p.Line, funcDisplay(e.fn), chainText(e))
	}
	return b.String()
}

func funcDisplay(fn *FuncInfo) string {
	if fn.Obj != nil {
		return displayName(fn.Obj)
	}
	return fn.Decl.Name.Name
}

func cycleKey(prog *Program, cyc []lockEdge) string {
	names := make([]string, 0, len(cyc))
	for _, e := range cyc {
		names = append(names, prog.lockDesc(e.to, ""))
	}
	sort.Strings(names)
	return strings.Join(names, "→")
}

// collectLockEdges builds the held→acquired edge set over every function:
// direct acquisitions under a held lock, and call sites whose callees
// (transitively) acquire locks.
func collectLockEdges(prog *Program) []lockEdge {
	infos := prog.sortedFuncs()
	var edges []lockEdge
	for _, fi := range infos {
		for _, a := range fi.acquires {
			if a.obj == nil {
				continue
			}
			for _, h := range a.held {
				if h.obj == nil {
					continue
				}
				edges = append(edges, lockEdge{
					from: h.obj, to: a.obj,
					fromMeth: h.method, toMeth: a.method,
					pos: a.pos, acqPos: a.pos, fn: fi,
				})
			}
		}
		for _, cs := range fi.calls {
			if len(cs.held) == 0 {
				continue
			}
			for _, callee := range cs.callees {
				g := prog.funcs[callee]
				if g == nil {
					continue
				}
				for lock, w := range g.sumAcquires {
					for _, h := range cs.held {
						if h.obj == nil {
							continue
						}
						edges = append(edges, lockEdge{
							from: h.obj, to: lock,
							fromMeth: h.method, toMeth: w.method,
							pos: cs.pos, acqPos: w.pos, fn: fi,
							chain: prependPath(displayName(callee), w.path),
						})
					}
				}
			}
		}
	}
	// Deterministic order: by position, then lock names.
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		pa, pb := prog.Fset.Position(a.pos), prog.Fset.Position(b.pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		return prog.lockDesc(a.to, "") < prog.lockDesc(b.to, "")
	})
	return edges
}

func (prog *Program) sortedFuncs() []*FuncInfo {
	infos := make([]*FuncInfo, 0, len(prog.funcs))
	for _, fi := range prog.funcs {
		infos = append(infos, fi)
	}
	sort.Slice(infos, func(i, j int) bool {
		return infos[i].Obj.FullName() < infos[j].Obj.FullName()
	})
	return infos
}

// findLockCycles finds elementary acquisition cycles (bounded length) in
// the lock graph. Self-loops are handled by the inversion pass, so cycles
// here have length >= 2.
func findLockCycles(prog *Program, edges []lockEdge) [][]lockEdge {
	adj := make(map[types.Object][]lockEdge)
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		// One representative edge per (from,to).
		dup := false
		for _, x := range adj[e.from] {
			if x.to == e.to {
				dup = true
				break
			}
		}
		if !dup {
			adj[e.from] = append(adj[e.from], e)
		}
	}
	nodes := make([]types.Object, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return prog.lockDesc(nodes[i], "") < prog.lockDesc(nodes[j], "")
	})
	order := make(map[types.Object]int, len(nodes))
	for i, n := range nodes {
		order[n] = i
	}

	const maxLen = 8
	var cycles [][]lockEdge
	var path []lockEdge
	onPath := make(map[types.Object]bool)
	var dfs func(start, cur types.Object)
	dfs = func(start, cur types.Object) {
		if len(path) >= maxLen {
			return
		}
		for _, e := range adj[cur] {
			if e.to == start {
				cyc := append([]lockEdge(nil), path...)
				cyc = append(cyc, e)
				cycles = append(cycles, cyc)
				continue
			}
			// Only visit nodes ordered after start, so each cycle is
			// discovered exactly once (rooted at its minimal node).
			if order[e.to] <= order[start] || onPath[e.to] {
				continue
			}
			onPath[e.to] = true
			path = append(path, e)
			dfs(start, e.to)
			path = path[:len(path)-1]
			delete(onPath, e.to)
		}
	}
	for _, n := range nodes {
		onPath[n] = true
		dfs(n, n)
		delete(onPath, n)
	}
	return cycles
}
