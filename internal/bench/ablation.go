package bench

import (
	"context"
	"fmt"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wal"
)

// AblationGroupCommit isolates the CON-COM mechanism (DESIGN.md ablation
// list): the same Madeus migration against a destination whose WAL group
// commit is disabled. Without group commit the concurrent commit
// propagation loses most of its advantage — each propagated commit pays a
// full fsync, as B-CON always does.
func AblationGroupCommit(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Ablation: slave group commit on vs off (Madeus, heavy load)",
		Header: []string{"slave WAL", "migration", "propagate", "max commit group"},
	}
	for _, serial := range []bool{false, true} {
		mw, err := core.New(core.Options{Players: cfg.Players, CatchupTimeout: cfg.CatchupTimeout})
		if err != nil {
			return nil, err
		}
		srcOpts := cfg.engineOptions()
		dstOpts := cfg.engineOptions()
		if serial {
			dstOpts.WAL.Mode = wal.SerialCommit
		}
		src, err := cluster.NewNode("node0", cluster.NodeOptions{Engine: srcOpts})
		if err != nil {
			mw.Close()
			return nil, err
		}
		dst, err := cluster.NewNode("node1", cluster.NodeOptions{Engine: dstOpts})
		if err != nil {
			src.Close()
			mw.Close()
			return nil, err
		}
		mw.AddNode(src)
		mw.AddNode(dst)
		h := &Harness{cfg: cfg, MW: mw, Nodes: []*cluster.Node{src, dst}}

		scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
		if err := h.Provision("tenantA", "node0", scale); err != nil {
			h.Close()
			return nil, err
		}
		rep, _, err := h.MigrateUnderLoad("tenantA", "node1", cfg.EBs(PaperHeavyEBs),
			tpcw.Ordering, scale, core.MigrateOptions{Strategy: core.Madeus})
		h.Close()
		mode := "group commit"
		if serial {
			mode = "serial fsync"
		}
		switch {
		case err == core.ErrCatchupTimeout:
			t.AddRow(mode, "N/A", "-", "-")
		case err != nil:
			return nil, err
		default:
			t.AddRow(mode, fmtDur(rep.Total()), fmtDur(rep.PropagateTime),
				fmt.Sprint(rep.Propagation.MaxGroup))
		}
	}
	t.Note("disabling the slave's group commit removes the CON-COM benefit Madeus relies on (Sec 4.1)")
	return t, nil
}

// AblationMiddlewareOverhead measures the worker path's cost in normal
// processing (no migration): the same workload through Madeus versus
// directly against the DBMS node. The paper argues the middleware critical
// region costs little outside migrations (Sec 5.4).
func AblationMiddlewareOverhead(cfg Config) (*Table, error) {
	h, err := NewHarness(cfg, 1)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Ablation: middleware worker overhead (medium load, ordering mix)",
		Header: []string{"path", "mean RT", "p95 RT", "tput/s"},
	}
	// Through the middleware.
	viaMW, err := h.MeasureLoad("tenantA", cfg.EBs(PaperMediumEBs), tpcw.Ordering, scale)
	if err != nil {
		return nil, err
	}
	t.AddRow("through Madeus", fmtDur(viaMW.Mean), fmtDur(viaMW.P95),
		fmt.Sprintf("%.0f", viaMW.Throughput))

	// Directly against the node.
	direct, err := measureDirect(cfg, h.Nodes[0], "tenantA", cfg.EBs(PaperMediumEBs), scale)
	if err != nil {
		return nil, err
	}
	t.AddRow("direct to node", fmtDur(direct.Mean), fmtDur(direct.P95),
		fmt.Sprintf("%.0f", direct.Throughput))
	if direct.Mean > 0 {
		t.Note("overhead: %.1f%% on mean response time",
			100*(float64(viaMW.Mean)-float64(direct.Mean))/float64(direct.Mean))
	}
	return t, nil
}

// measureDirect runs the same EB fleet straight at the node, bypassing the
// middleware.
func measureDirect(cfg Config, node *cluster.Node, tenant string, ebs int, scale tpcw.Scale) (metrics.Summary, error) {
	rec := metrics.NewRecorder()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Warm+cfg.Measure)
	defer cancel()
	err := tpcw.RunFleet(ctx, ebs, tpcw.Ordering, scale, cfg.Think, func() (tpcw.Execer, error) {
		return node.Connect(tenant)
	}, rec)
	if err != nil {
		return metrics.Summary{}, err
	}
	return rec.Summarize(), nil
}
