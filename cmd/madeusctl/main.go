// Command madeusctl sends operator commands to a running madeusd.
//
//	madeusctl -addr 127.0.0.1:6000 status
//	madeusctl -addr 127.0.0.1:6000 add-tenant shop node0
//	madeusctl -addr 127.0.0.1:6000 migrate shop node1
//	madeusctl -addr 127.0.0.1:6000 migrate shop node1 B-MIN
//	madeusctl -addr 127.0.0.1:6000 trace shop
//	madeusctl -addr 127.0.0.1:6000 events -follow -tenant shop
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6000", "madeusd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var cmd string
	switch args[0] {
	case "status":
		cmd = "STATUS"
	case "stats":
		switch len(args) {
		case 1:
			cmd = "STATS"
		case 2:
			cmd = "STATS " + args[1]
		default:
			usage()
		}
	case "events":
		// `events -follow` live-tails the trace ring using the event
		// sequence number as a bookmark; everything else is a one-shot.
		followEvents(*addr, args[1:])
		return
	case "trace":
		// Merged cross-node timeline for one tenant: the daemon scrapes
		// every node's trace ring and interleaves it with its own spans.
		switch len(args) {
		case 2:
			cmd = "TRACE " + args[1]
		case 3:
			cmd = fmt.Sprintf("TRACE %s %s", args[1], args[2])
		default:
			usage()
		}
	case "history":
		switch {
		case len(args) == 1:
			cmd = "HISTORY"
		case len(args) == 3 && args[1] == "cadence":
			cmd = "HISTORY CADENCE " + args[2]
		case len(args) == 2:
			cmd = "HISTORY " + args[1]
		case len(args) == 3:
			cmd = fmt.Sprintf("HISTORY %s %s", args[1], args[2])
		default:
			usage()
		}
	case "bundle":
		dumpBundle(*addr, args[1:])
		return
	case "add-tenant":
		if len(args) != 3 {
			usage()
		}
		cmd = fmt.Sprintf("ADD TENANT %s ON %s", args[1], args[2])
	case "remove-tenant":
		if len(args) != 2 {
			usage()
		}
		cmd = "REMOVE TENANT " + args[1]
	case "migrate":
		switch len(args) {
		case 3:
			cmd = fmt.Sprintf("MIGRATE %s TO %s", args[1], args[2])
		case 4:
			cmd = fmt.Sprintf("MIGRATE %s TO %s STRATEGY %s", args[1], args[2], args[3])
		default:
			usage()
		}
	case "flow":
		// Backpressure surface: `flow` lists knobs + live counters,
		// `flow set <knob> <value>` retunes one at runtime.
		switch {
		case len(args) == 1:
			cmd = "FLOW"
		case len(args) == 4 && args[1] == "set":
			cmd = fmt.Sprintf("FLOW SET %s %s", args[2], args[3])
		default:
			usage()
		}
	case "fault":
		// Passthrough to the failpoint registry (daemon must be built
		// with -tags faultinject): fault list | enable <site> <policy>
		// | disable <site> | release <site> | reset | seed <n>.
		if len(args) < 2 {
			usage()
		}
		cmd = "FAULT " + strings.Join(args[1:], " ")
	default:
		usage()
	}

	c := dial(*addr)
	defer c.Close()
	res, err := c.Exec(cmd)
	if err != nil {
		fatal(err)
	}
	printResult(res)
}

func dial(addr string) *wire.Client {
	c, err := wire.Dial(addr, core.AdminDB)
	if err != nil {
		fatal(err)
	}
	return c
}

func printResult(res *engine.Result) {
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, "\t"))
	}
	printRows(res)
	fmt.Println(res.Tag)
}

func printRows(res *engine.Result) {
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
}

// followEvents handles `events [n]` and `events -follow`. The follow mode
// polls EVENTS SINCE <seq> on one admin session, advancing the bookmark past
// the highest sequence number seen, and exits cleanly on Ctrl-C.
func followEvents(addr string, args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	follow := fs.Bool("follow", false, "stream new events until interrupted")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval in follow mode")
	tenant := fs.String("tenant", "", "only show events for this tenant")
	if err := fs.Parse(args); err != nil {
		usage()
	}
	rest := fs.Args()
	if len(rest) > 1 {
		usage()
	}

	c := dial(addr)
	defer c.Close()

	if !*follow {
		cmd := "EVENTS"
		if len(rest) == 1 {
			cmd += " " + rest[0]
		}
		res, err := c.Exec(cmd)
		if err != nil {
			fatal(err)
		}
		printResult(res)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// Seed the bookmark from everything currently in the ring so the tail
	// only ever shows events that happen after we attach.
	var since uint64
	poll := func() {
		cmd := "EVENTS SINCE " + strconv.FormatUint(since, 10)
		if *tenant != "" {
			cmd += " " + *tenant
		}
		res, err := c.Exec(cmd)
		if err != nil {
			fatal(err)
		}
		printRows(res)
		for _, row := range res.Rows {
			if len(row) == 0 {
				continue
			}
			if seq, err := strconv.ParseUint(row[0].String(), 10, 64); err == nil && seq >= since {
				since = seq + 1
			}
		}
	}
	// First call fast-forwards the bookmark without printing history.
	seed := "EVENTS SINCE 0"
	if *tenant != "" {
		seed += " " + *tenant
	}
	res, err := c.Exec(seed)
	if err != nil {
		fatal(err)
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, "\t"))
	}
	for _, row := range res.Rows {
		if len(row) == 0 {
			continue
		}
		if seq, err := strconv.ParseUint(row[0].String(), 10, 64); err == nil && seq >= since {
			since = seq + 1
		}
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			return
		case <-tick.C:
			poll()
		}
	}
}

// dumpBundle handles `bundle [-o file] [id]`. Without an id it lists stored
// flight-recorder bundles; with one it fetches the full JSON payload, to
// stdout or -o <file>.
func dumpBundle(addr string, args []string) {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	out := fs.String("o", "", "write the bundle JSON to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		usage()
	}
	rest := fs.Args()
	if len(rest) > 1 {
		usage()
	}

	c := dial(addr)
	defer c.Close()

	if len(rest) == 0 {
		res, err := c.Exec("BUNDLE")
		if err != nil {
			fatal(err)
		}
		printResult(res)
		return
	}
	res, err := c.Exec("BUNDLE " + rest[0])
	if err != nil {
		fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
		fatal(fmt.Errorf("empty bundle reply"))
	}
	// Raw string, not Value.String(): the SQL rendering quotes text cells,
	// which would corrupt the JSON document.
	payload := res.Rows[0][0].Str
	if *out == "" {
		fmt.Println(payload)
		return
	}
	if err := os.WriteFile(*out, []byte(payload+"\n"), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote bundle %s to %s (%d bytes)\n", rest[0], *out, len(payload)+1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: madeusctl [-addr host:port] <command>
commands:
  status                          list tenants, nodes, and migration state
  stats [tenant]                  process-wide metrics, or one tenant's monitor
  events [n]                      tail of the migration event trace (default 50)
  events -follow [-tenant t] [-interval d]
                                  live-tail new events until Ctrl-C
  trace <tenant> [n]              merged cross-node timeline for one tenant
  history                         per-tenant time-series summary (min/max/avg)
  history <tenant> [n]            raw samples for one tenant (default 60)
  history cadence <dur>           retune the sampler cadence (negative: pause)
  bundle [-o file] [id]           list flight-recorder bundles, or dump one as JSON
  add-tenant <tenant> <node>      provision a tenant on a node
  remove-tenant <tenant>          drop a tenant from the middleware (not migrating)
  migrate <tenant> <node> [strat] live-migrate (strat: B-ALL B-MIN B-CON Madeus)
  flow                            list backpressure knobs and live counters
  flow set <knob> <value>         retune one backpressure knob at runtime
  fault <subcmd> [args]           drive failpoints on a -tags faultinject build:
                                  list | enable <site> <error|drop|hang> [times]
                                  | enable <site> delay <dur> [times]
                                  | enable <site> p <prob> | disable <site>
                                  | release <site> | reset | seed <n>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madeusctl:", err)
	os.Exit(1)
}
