//go:build invariants

package mvcc

import (
	"testing"

	"madeus/internal/invariant"
)

// TestInvariantsExercised drives the instrumented MVCC paths — commit CSN
// ordering, version visibility, row-lock acquisition, first-updater-wins
// re-verification, and the at-most-one-visible SI check — and proves the
// assertions evaluated.
func TestInvariantsExercised(t *testing.T) {
	invariant.Reset()

	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 10)
	mustCommit(t, t1)

	t2 := m.Begin()
	if ok, err := tb.Update(t2, key(1), row(1, 11)); err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	if r := tb.Get(t2, key(1)); r == nil || r[1].Int != 11 {
		t.Fatalf("own update not visible: %v", r)
	}
	mustCommit(t, t2)

	t3 := m.Begin()
	if ok, err := tb.Delete(t3, key(1)); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if err := t3.Abort(); err != nil {
		t.Fatal(err)
	}

	if n := invariant.Count(); n == 0 {
		t.Fatal("no invariant assertions were evaluated; instrumentation is dead")
	} else {
		t.Logf("evaluated %d assertions", n)
	}
}

// TestDoubleCommitAssertPanics proves the commit-status assertion is live by
// forging a second commit on an already-committed state.
func TestDoubleCommitAssertPanics(t *testing.T) {
	m, tb := testTable(t)
	t1 := m.Begin()
	mustInsert(t, tb, t1, 1, 10)
	mustCommit(t, t1)
	// Forge a fresh Txn handle sharing t1's ID so the done flag does not
	// short-circuit the path; the manager-side status assertion must fire.
	forged := &Txn{ID: t1.ID, Snapshot: t1.Snapshot, mgr: m}
	defer func() {
		if recover() == nil {
			t.Fatal("expected the non-active-commit assertion to panic")
		}
	}()
	forged.Commit() //nolint:errcheck // panics before returning
}
