package core

import (
	"fmt"
	"strings"

	"madeus/internal/engine"
	"madeus/internal/sqlmini"
)

// AdminDB is the pseudo-database name operators connect to for control
// operations (the channel cmd/madeusctl uses).
const AdminDB = "_admin"

// adminConn serves operator commands over the ordinary wire protocol:
//
//	ADD NODE <name> <addr>            (not supported over the wire; nodes
//	                                   are registered at startup)
//	ADD TENANT <tenant> ON <node>
//	MIGRATE <tenant> TO <node> [STRATEGY <B-ALL|B-MIN|B-CON|Madeus>]
//	STATUS
type adminConn struct {
	mw *Middleware
}

// Close implements wire.Conn.
func (a *adminConn) Close() {}

// Exec implements wire.Conn for the admin channel.
func (a *adminConn) Exec(cmd string) (*engine.Result, error) {
	fields := strings.Fields(cmd)
	upper := make([]string, len(fields))
	for i, f := range fields {
		upper[i] = strings.ToUpper(f)
	}
	switch {
	case len(fields) >= 2 && upper[0] == "ADD" && upper[1] == "TENANT":
		if len(fields) != 5 || upper[3] != "ON" {
			return nil, fmt.Errorf("core: usage: ADD TENANT <tenant> ON <node>")
		}
		if err := a.mw.ProvisionTenant(fields[2], fields[4]); err != nil {
			return nil, err
		}
		return &engine.Result{Tag: "ADD TENANT"}, nil

	case len(fields) >= 1 && upper[0] == "MIGRATE":
		if len(fields) < 4 || upper[2] != "TO" {
			return nil, fmt.Errorf("core: usage: MIGRATE <tenant> TO <node> [STRATEGY <name>]")
		}
		opts := MigrateOptions{Strategy: Madeus}
		if len(fields) >= 6 && upper[4] == "STRATEGY" {
			st, err := ParseStrategy(fields[5])
			if err != nil {
				return nil, err
			}
			opts.Strategy = st
		} else if len(fields) != 4 {
			return nil, fmt.Errorf("core: usage: MIGRATE <tenant> TO <node> [STRATEGY <name>]")
		}
		rep, err := a.mw.Migrate(fields[1], fields[3], opts)
		if err != nil {
			return nil, err
		}
		return &engine.Result{
			Columns: []string{"report"},
			Rows:    [][]sqlmini.Value{{sqlmini.NewText(rep.String())}},
			Tag:     "MIGRATE",
		}, nil

	case len(fields) == 1 && upper[0] == "STATUS":
		res := &engine.Result{Columns: []string{"tenant", "node", "mlc"}, Tag: "STATUS"}
		for _, name := range a.mw.Tenants() {
			t, ok := a.mw.Tenant(name)
			if !ok {
				continue
			}
			node, _ := t.Node()
			res.Rows = append(res.Rows, []sqlmini.Value{
				sqlmini.NewText(name),
				sqlmini.NewText(node.BackendName()),
				sqlmini.NewInt(int64(t.MLC())),
			})
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: unknown admin command %q", cmd)
}

// ParseStrategy converts a strategy name (as printed by String) to its
// value. Case-insensitive; accepts "BALL"/"B-ALL" style variants.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToUpper(strings.ReplaceAll(s, "-", "")) {
	case "MADEUS":
		return Madeus, nil
	case "BALL":
		return BAll, nil
	case "BMIN":
		return BMin, nil
	case "BCON":
		return BCon, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}
