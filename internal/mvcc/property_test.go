package mvcc

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// TestPropertySnapshotStability: whatever interleaving of concurrent
// committed writers runs, a reader's repeated Get of the same key inside one
// transaction always returns the same value (repeatable reads under SI).
func TestPropertySnapshotStability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, tb := quickTable(t)
		init := m.Begin()
		for k := int64(0); k < 5; k++ {
			if err := tb.Insert(init, row(k, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := init.Commit(); err != nil {
			t.Fatal(err)
		}

		reader := m.Begin()
		first := make(map[int64]int64)
		for k := int64(0); k < 5; k++ {
			r := tb.Get(reader, key(k))
			first[k] = r[1].Int
		}
		// Interleave random committed writes.
		for i := 0; i < 20; i++ {
			w := m.Begin()
			k := rng.Int63n(5)
			if ok, err := tb.Update(w, key(k), row(k, rng.Int63n(1000)+1)); err != nil || !ok {
				w.Abort()
				continue
			}
			if _, err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			// Reader must still see its snapshot.
			kk := rng.Int63n(5)
			r := tb.Get(reader, key(kk))
			if r == nil || r[1].Int != first[kk] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFirstUpdaterWins: among N transactions that all try to update
// the same row concurrently (write before any commits), at most one commits
// successfully per "round", and the final row value matches the last
// committed writer.
func TestPropertyFirstUpdaterWins(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, tb := quickTable(t)
		m.LockTimeout = time.Second
		init := m.Begin()
		if err := tb.Insert(init, row(1, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := init.Commit(); err != nil {
			t.Fatal(err)
		}

		n := 2 + rng.Intn(4)
		txns := make([]*Txn, n)
		for i := range txns {
			txns[i] = m.Begin()
		}
		// The first txn to update acquires the lock; the rest would
		// block, so issue writes sequentially: winner first, then the
		// rest after the winner resolves.
		winner := rng.Intn(n)
		if ok, err := tb.Update(txns[winner], key(1), row(1, int64(winner+1))); err != nil || !ok {
			return false
		}
		if _, err := txns[winner].Commit(); err != nil {
			t.Fatal(err)
		}
		// Every remaining concurrent txn must now fail to update.
		for i, txn := range txns {
			if i == winner {
				continue
			}
			if _, err := tb.Update(txn, key(1), row(1, int64(i+100))); err != ErrSerialization {
				return false
			}
			txn.Abort()
		}
		final := tb.Get(m.Begin(), key(1))
		return final != nil && final[1].Int == int64(winner+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMonotoneCSN: commit sequence numbers are strictly increasing
// and every committed transaction's effects are visible to snapshots taken
// at or after its CSN and invisible before.
func TestPropertyMonotoneCSN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, tb := quickTable(t)
		var last CSN
		for i := int64(0); i < 10; i++ {
			txn := m.Begin()
			if err := tb.Insert(txn, row(i, rng.Int63n(100))); err != nil {
				t.Fatal(err)
			}
			csn, err := txn.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if csn <= last {
				return false
			}
			last = csn
			if m.LastCSN() != csn {
				return false
			}
			// New snapshot sees exactly i+1 rows.
			if got := tb.Len(m.Begin()); got != int(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func quickTable(t testing.TB) (*Manager, *Table) {
	s, err := storage.NewSchema("kv", []storage.Column{
		{Name: "k", Type: sqlmini.KindInt, PrimaryKey: true},
		{Name: "v", Type: sqlmini.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	return m, NewTable(s, m)
}

func BenchmarkGetHot(b *testing.B) {
	m, tb := quickTable(b)
	init := m.Begin()
	if err := tb.Insert(init, row(1, 1)); err != nil {
		b.Fatal(err)
	}
	if _, err := init.Commit(); err != nil {
		b.Fatal(err)
	}
	txn := m.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := tb.Get(txn, key(1)); r == nil {
			b.Fatal("missing row")
		}
	}
}

func BenchmarkInsertCommit(b *testing.B) {
	m, tb := quickTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := m.Begin()
		if err := tb.Insert(txn, row(int64(i), 1)); err != nil {
			b.Fatal(err)
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateDisjointParallel(b *testing.B) {
	m, tb := quickTable(b)
	init := m.Begin()
	for k := int64(0); k < 1024; k++ {
		if err := tb.Insert(init, row(k, 0)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := init.Commit(); err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := (ctr.Add(1) * 7) % 1024
			txn := m.Begin()
			if ok, err := tb.Update(txn, key(k), row(k, 1)); err != nil || !ok {
				txn.Abort()
				continue
			}
			if _, err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
