package tpcw

// Mix is one TPC-W browse/order profile: the percentage of interactions
// that update the database (Sec 5.1: browsing 5%, shopping 20%, ordering
// 50%).
type Mix struct {
	Name      string
	UpdatePct int
}

// The three standard profiles.
var (
	Browsing = Mix{Name: "browsing", UpdatePct: 5}
	Shopping = Mix{Name: "shopping", UpdatePct: 20}
	Ordering = Mix{Name: "ordering", UpdatePct: 50}
)

// Mixes lists the profiles.
func Mixes() []Mix { return []Mix{Browsing, Shopping, Ordering} }

// interaction identifies one TPC-W web interaction.
type interaction int

const (
	iHome interaction = iota
	iProductDetail
	iSearch
	iBestSellers
	iOrderInquiry
	iShoppingCart
	iBuyConfirm
	iAdminUpdate
)

func (i interaction) String() string {
	switch i {
	case iHome:
		return "Home"
	case iProductDetail:
		return "ProductDetail"
	case iSearch:
		return "Search"
	case iBestSellers:
		return "BestSellers"
	case iOrderInquiry:
		return "OrderInquiry"
	case iShoppingCart:
		return "ShoppingCart"
	case iBuyConfirm:
		return "BuyConfirm"
	case iAdminUpdate:
		return "AdminUpdate"
	}
	return "?"
}

// readOnly reports whether the interaction only reads.
func (i interaction) readOnly() bool { return i < iShoppingCart }

// weighted tables for picking within the read-only and update classes.
var (
	readWeights = []struct {
		i interaction
		w int
	}{
		{iHome, 30}, {iProductDetail, 30}, {iSearch, 20},
		{iBestSellers, 10}, {iOrderInquiry, 10},
	}
	updateWeights = []struct {
		i interaction
		w int
	}{
		{iShoppingCart, 40}, {iBuyConfirm, 40}, {iAdminUpdate, 20},
	}
)
