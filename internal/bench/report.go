package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's printable result: the rows/series the paper's
// figure or table reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := len(c)
			if i < len(widths) {
				wdt = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wdt, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
