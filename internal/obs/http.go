package obs

import (
	"net/http"
	"strconv"
)

// Handler serves the registry, tracer, and history over HTTP in the
// expvar style:
//
//	GET /debug/madeus            combined JSON (metrics + recent events + history)
//	GET /debug/madeus?events=N   cap the event tail at N (default 200)
//	GET /debug/madeus/text       plain-text metric dump
//	GET /debug/madeus/prom       Prometheus text exposition of the registry
//
// h may be nil on processes without a sampler (dbnode); the JSON document
// then simply omits its history section. Mount it with NewServeMux and
// http.Serve from cmd/madeusd's -debug flag; it holds no per-request state
// and is safe for concurrent use.
func Handler(r *Registry, t *Tracer, h *History) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/madeus", func(w http.ResponseWriter, req *http.Request) {
		n := 200
		if q := req.URL.Query().Get("events"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "obs: bad events count", http.StatusBadRequest)
				return
			}
			n = v
		}
		snap := DebugSnapshot{Metrics: r.Snapshot(), Events: t.Last(n)}
		if h != nil {
			snap.History = h.Snapshot(n)
		}
		w.Header().Set("Content-Type", "application/json")
		// The client hanging up mid-write is its problem; nothing to do
		// with the error beyond not masking a partial write as success.
		_ = WriteDebug(w, snap)
	})
	mux.HandleFunc("/debug/madeus/text", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteText(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/madeus/prom", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	return mux
}
