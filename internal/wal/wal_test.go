package wal

import (
	"sync"
	"testing"
	"time"
)

func TestGroupCommitBatchesConcurrentCommits(t *testing.T) {
	l := New(Options{SyncDelay: 2 * time.Millisecond, Mode: GroupCommit})
	defer l.Close()

	const n = 50
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := l.Stats()
	if st.Commits != n {
		t.Errorf("Commits = %d, want %d", st.Commits, n)
	}
	// 50 concurrent commits must share fsyncs: far fewer than one each.
	if st.Fsyncs >= n/2 {
		t.Errorf("Fsyncs = %d, want < %d (group commit not batching)", st.Fsyncs, n/2)
	}
	if st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d, want >= 2", st.MaxBatch)
	}
	// And latency must be far below n * SyncDelay.
	if elapsed > time.Duration(n)*2*time.Millisecond/2 {
		t.Errorf("elapsed %v too close to serial cost", elapsed)
	}
}

func TestSerialCommitOneFsyncPerCommit(t *testing.T) {
	l := New(Options{SyncDelay: 100 * time.Microsecond, Mode: SerialCommit})
	defer l.Close()

	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Fsyncs != n {
		t.Errorf("Fsyncs = %d, want %d", st.Fsyncs, n)
	}
	if st.MaxBatch != 1 {
		t.Errorf("MaxBatch = %d, want 1", st.MaxBatch)
	}
}

func TestAppendCountsAndRetains(t *testing.T) {
	l := New(Options{RetainRecords: 2})
	defer l.Close()
	l.Append(Record{TxnID: 1, Kind: RecInsert, DB: "a", Table: "t", Data: "x"})
	l.Append(Record{TxnID: 1, Kind: RecCommit})
	l.Append(Record{TxnID: 2, Kind: RecInsert}) // beyond retain cap
	st := l.Stats()
	if st.Records != 3 {
		t.Errorf("Records = %d, want 3", st.Records)
	}
	got := l.Retained()
	if len(got) != 2 || got[0].Data != "x" || got[1].Kind != RecCommit {
		t.Errorf("Retained = %+v", got)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	l := New(Options{Mode: GroupCommit})
	l.Close()
	if err := l.Commit(); err == nil {
		t.Error("want error after Close")
	}
}

func TestCloseIdempotent(t *testing.T) {
	l := New(Options{Mode: GroupCommit})
	l.Close()
	l.Close() // must not panic or deadlock
}

func TestZeroSyncDelayStillCountsFsyncs(t *testing.T) {
	l := New(Options{Mode: SerialCommit})
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 5 {
		t.Errorf("Fsyncs = %d, want 5", st.Fsyncs)
	}
}

func TestModeString(t *testing.T) {
	if GroupCommit.String() != "group" || SerialCommit.String() != "serial" {
		t.Error("Mode.String")
	}
}

// TestGroupCommitThroughputExceedsSerial demonstrates the paper's cost
// model: with commit arrival concurrency, group commit sustains much higher
// commit throughput than serial commit at the same fsync latency.
func TestGroupCommitThroughputExceedsSerial(t *testing.T) {
	// The delay must be in simlat's sleep regime (>= 2ms): shorter
	// delays busy-wait, and on a single-CPU host a spinning committer
	// starves the enqueuers, preventing batch formation.
	const (
		delay   = 3 * time.Millisecond
		workers = 32
		perW    = 5
	)
	run := func(mode Mode) time.Duration {
		l := New(Options{SyncDelay: delay, Mode: mode})
		defer l.Close()
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perW; j++ {
					if err := l.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	group := run(GroupCommit)
	serial := run(SerialCommit)
	if group >= serial {
		t.Errorf("group %v not faster than serial %v", group, serial)
	}
}

func BenchmarkGroupCommitParallel(b *testing.B) {
	l := New(Options{SyncDelay: 200 * time.Microsecond, Mode: GroupCommit})
	defer l.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSerialCommitParallel(b *testing.B) {
	l := New(Options{SyncDelay: 200 * time.Microsecond, Mode: SerialCommit})
	defer l.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
