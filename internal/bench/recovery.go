package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"madeus/internal/engine"
	"madeus/internal/wal"
)

// Recovery is the crash-recovery ablation (not a paper figure): the same
// seeded transactional workload is committed into a durable engine several
// times, each leg checkpointing at a different interval (measured in
// committed transactions), then the engine is killed without shutdown and
// reopened. Columns: checkpoint interval, WAL bytes scanned at recovery,
// WAL records decoded, redo units applied past the checkpoint, and the
// recovery wall time. The contrast is the durability section's claim that
// checkpoints bound replay: without one, recovery replays the whole history;
// with frequent ones, it replays only the tail since the last checkpoint.
func Recovery(cfg Config) (*Table, error) {
	// Scale the history length like the figures scale populations. The
	// fsync delay is zeroed for the workload phase — it would only slow
	// down producing the log, and replay suppresses fsyncs anyway, so the
	// measured recovery time is pure redo cost either way.
	txns := 48000 / cfg.RowFactor
	if txns < 200 {
		txns = 200
	}
	legs := []struct {
		label string
		every int // commits between checkpoints; 0 = never
	}{
		{"none", 0},
		{fmt.Sprintf("every %d txns", txns / 4), txns / 4},
		{fmt.Sprintf("every %d txns", txns / 16), txns / 16},
	}

	t := &Table{
		Title: fmt.Sprintf("recovery: crash-recovery cost vs checkpoint interval (%d txns)", txns),
		Header: []string{"checkpoint", "wal bytes", "records", "applied",
			"recovery"},
	}
	for _, leg := range legs {
		stats, err := recoveryLeg(cfg, txns, leg.every)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery %s leg: %w", leg.label, err)
		}
		t.AddRow(leg.label,
			fmt.Sprintf("%.1f KiB", float64(stats.Bytes)/(1<<10)),
			fmt.Sprint(stats.Records),
			fmt.Sprint(stats.Applied),
			stats.Duration.Round(100*time.Microsecond).String())
	}
	t.Note("each leg: same seeded workload, kill -9 (no shutdown), reopen; "+
		"recovery stats from engine.LastRecovery; recovered state verified "+
		"against the committed row count (%d txns)", txns)
	return t, nil
}

// recoveryLeg runs one workload-crash-recover cycle and returns the reopened
// engine's recovery stats after verifying the committed prefix survived.
func recoveryLeg(cfg Config, txns, ckptEvery int) (engine.RecoveryStats, error) {
	var zero engine.RecoveryStats
	dir, err := os.MkdirTemp("", "madeus-bench-recovery-")
	if err != nil {
		return zero, err
	}
	defer os.RemoveAll(dir)

	opts := engine.Options{
		WAL:         wal.Options{Mode: wal.GroupCommit},
		LockTimeout: time.Second,
		DataDir:     dir,
	}
	e, err := engine.Open(opts)
	if err != nil {
		return zero, err
	}
	if err := e.CreateDatabase("shop"); err != nil {
		e.Crash()
		return zero, err
	}
	sess, err := e.NewSession("shop")
	if err != nil {
		e.Crash()
		return zero, err
	}
	exec := func(stmt string) error {
		_, eerr := sess.Exec(stmt)
		return eerr
	}
	if err := exec("CREATE TABLE audit (id INT PRIMARY KEY, v TEXT, n INT)"); err != nil {
		e.Crash()
		return zero, err
	}

	// Seeded history: every transaction inserts one audit row and updates
	// an earlier one, so WAL volume grows linearly and replay touches both
	// insert and update redo paths. The seed is fixed so every leg commits
	// an identical history — only the checkpoint cadence differs.
	rng := rand.New(rand.NewSource(20150831))
	for i := 1; i <= txns; i++ {
		if err := exec("BEGIN"); err != nil {
			e.Crash()
			return zero, err
		}
		if err := exec(fmt.Sprintf(
			"INSERT INTO audit (id, v, n) VALUES (%d, 'payload %d %x', %d)",
			i, i, rng.Int63(), rng.Intn(1000))); err != nil {
			e.Crash()
			return zero, err
		}
		if err := exec(fmt.Sprintf("UPDATE audit SET n = %d WHERE id = %d",
			rng.Intn(1000), rng.Intn(i)+1)); err != nil {
			e.Crash()
			return zero, err
		}
		if err := exec("COMMIT"); err != nil {
			e.Crash()
			return zero, err
		}
		// Never checkpoint on the final commit: the crash should land one
		// full interval past the last checkpoint, so the leg measures the
		// tail replay a real mid-interval crash would pay.
		if ckptEvery > 0 && i%ckptEvery == 0 && i != txns {
			if _, err := e.Checkpoint(); err != nil {
				e.Crash()
				return zero, err
			}
		}
	}
	e.Crash()

	e2, err := engine.Open(opts)
	if err != nil {
		return zero, err
	}
	defer e2.Crash()
	sess2, err := e2.NewSession("shop")
	if err != nil {
		return zero, err
	}
	rows, err := sess2.RowCount("audit")
	if err != nil {
		return zero, err
	}
	if rows != txns {
		return zero, fmt.Errorf("recovered %d audit rows, committed %d", rows, txns)
	}
	return e2.LastRecovery(), nil
}
