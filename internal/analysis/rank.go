package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The repo's declared lock hierarchy (DESIGN.md §5a/§5f) is expressed as
// numeric ranks attached to mutex declarations:
//
//	mu sync.Mutex //madeusvet:lockrank tenant 20
//
// Locks must be acquired in strictly increasing rank order; the lockorder
// analyzer reports inversions and cycles against these declarations, and
// holdblock treats every lock with rank >= RankSession as one that must
// never be held across a (transitively reachable) blocking operation.
//
// Rank bands, mirroring the conductor → tenant → engine → mvcc → wal
// hierarchy:
//
//	 1..9   process infrastructure (wire server bookkeeping)
//	10..19  middleware / conductor / propagator
//	20..29  tenant critical region, flow-control and propagation bookkeeping
//	30..39  session/engine layer (RankSession starts here)
//	40..49  mvcc storage structures
//	50..59  wal
const RankSession = 30

// LockRank is one annotated mutex declaration.
type LockRank struct {
	Name    string
	Rank    int
	Striped bool // many instances striped by hash; index-ordered cross-stripe sections allowed
	Obj     types.Object // the mutex field or package-level var
	Pos     token.Pos
}

// RankTable indexes the lockrank annotations of one Program.
type RankTable struct {
	byObj    map[types.Object]LockRank
	byName   map[string]LockRank
	problems []Diagnostic // malformed or conflicting annotations
}

// Rank returns the annotation for a resolved lock object.
func (t *RankTable) Rank(obj types.Object) (LockRank, bool) {
	if t == nil || obj == nil {
		return LockRank{}, false
	}
	r, ok := t.byObj[obj]
	return r, ok
}

const lockrankDirective = "madeusvet:lockrank"

// collectRanks scans every package's struct fields and package-level vars
// for //madeusvet:lockrank directives. Annotations on anything that is not
// a sync.Mutex/RWMutex (or in a package whose type info is unavailable)
// are recorded as problems for lockorder to report.
func collectRanks(pkgs []*Package) *RankTable {
	t := &RankTable{
		byObj:  make(map[types.Object]LockRank),
		byName: make(map[string]LockRank),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectFileRanks(t, pkg, f)
		}
	}
	return t
}

func collectFileRanks(t *RankTable, pkg *Package, f *ast.File) {
	problem := func(pos token.Pos, format string, args ...any) {
		t.problems = append(t.problems, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Rule:    LockOrder.Name,
			Message: fmt.Sprintf(format, args...),
		})
	}
	addRank := func(name *ast.Ident, cg ...*ast.CommentGroup) {
		dir, pos, ok := lockrankIn(cg)
		if !ok {
			return
		}
		rankName, rank, striped, err := parseLockrank(dir)
		if err != "" {
			problem(pos, "bad lockrank directive: %s (want //madeusvet:lockrank <name> <rank> [striped])", err)
			return
		}
		if pkg.Info == nil {
			problem(pos, "lockrank %s ignored: package %s has no type information", rankName, pkg.Path)
			return
		}
		obj := pkg.Info.Defs[name]
		if obj == nil {
			problem(pos, "lockrank %s ignored: %s did not resolve", rankName, name.Name)
			return
		}
		if !isSyncType(obj.Type(), "Mutex") && !isSyncType(obj.Type(), "RWMutex") {
			problem(pos, "lockrank %s on %s: not a sync.Mutex/RWMutex", rankName, name.Name)
			return
		}
		if prev, dup := t.byName[rankName]; dup && prev.Rank != rank {
			problem(pos, "lockrank %s declared twice with different ranks (%d here, %d at %s)",
				rankName, rank, prev.Rank, pkg.Fset.Position(prev.Pos))
			return
		}
		lr := LockRank{Name: rankName, Rank: rank, Striped: striped, Obj: obj, Pos: pos}
		t.byObj[obj] = lr
		t.byName[rankName] = lr
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				for _, name := range field.Names {
					addRank(name, field.Doc, field.Comment)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					addRank(name, n.Doc, vs.Doc, vs.Comment)
				}
			}
		}
		return true
	})
}

// lockrankIn finds a lockrank directive in any of the comment groups and
// returns its argument text and position.
func lockrankIn(groups []*ast.CommentGroup) (args string, pos token.Pos, ok bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, found := strings.CutPrefix(text, lockrankDirective); found {
				return strings.TrimSpace(rest), c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// parseLockrank parses `<name> <rank>` with an optional trailing `striped`
// marker. Striped locks have many instances selected by hash; the
// stripeorder analyzer owns their cross-stripe acquisition discipline.
func parseLockrank(args string) (name string, rank int, striped bool, errMsg string) {
	fields := strings.Fields(args)
	switch len(fields) {
	case 2:
	case 3:
		if fields[2] != "striped" {
			return "", 0, false, "unknown marker " + strconv.Quote(fields[2]) + " (only \"striped\" is recognized)"
		}
		striped = true
	default:
		return "", 0, false, "want <name> <rank> [striped]"
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return "", 0, false, "rank " + strconv.Quote(fields[1]) + " is not an integer"
	}
	return fields[0], n, striped, ""
}
