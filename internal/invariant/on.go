//go:build invariants

package invariant

import (
	"fmt"
	"sync/atomic"
)

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// hits counts evaluated assertions so tag-gated tests can prove the
// instrumented call sites were actually exercised.
var hits atomic.Uint64

// Assert panics with msg when cond is false.
func Assert(cond bool, msg string) {
	hits.Add(1)
	if !cond {
		panic("invariant: " + msg)
	}
}

// Assertf panics with the formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	hits.Add(1)
	if !cond {
		panic(fmt.Sprintf("invariant: "+format, args...))
	}
}

// Check runs f and panics when it reports a violation. Use it for checks
// too expensive to evaluate eagerly at the call site.
func Check(f func() error) {
	hits.Add(1)
	if err := f(); err != nil {
		panic("invariant: " + err.Error())
	}
}

// Count reports how many assertions have been evaluated.
func Count() uint64 { return hits.Load() }

// Reset clears the assertion counter.
func Reset() { hits.Store(0) }
