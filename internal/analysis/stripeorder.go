package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StripeOrder pins the cross-stripe acquisition discipline for locks
// declared `//madeusvet:lockrank <name> <rank> striped` (DESIGN.md §5i):
// many instances of one mutex field, selected by key hash. Holding several
// stripes at once is deadlock-safe only when every cross-stripe section
// walks the stripes in ascending index order, so:
//
//   - acquiring a striped lock inside a loop WITHOUT releasing it in the
//     same loop body is a cross-stripe section; the enclosing function
//     must declare the discipline with a `//madeusvet:stripeorder` doc
//     directive, and the loop must visibly ascend (a range loop, or a for
//     loop with an increment post-statement);
//   - a `//madeusvet:stripeorder` directive on a function with no such
//     section is stale and reported, mirroring the staleignore contract.
//
// Per-stripe sweeps (lock+unlock inside one iteration, e.g. vacuum or the
// horizon scan) hold at most one stripe and need no directive. The
// lockorder analyzer defers same-object re-acquisition of striped locks to
// this rule.
var StripeOrder = &Analyzer{
	Name: "stripeorder",
	Doc:  "cross-stripe lock sections must be declared //madeusvet:stripeorder and walk stripes in ascending index order",
	Run:  runStripeOrder,
}

const stripeOrderDirective = "madeusvet:stripeorder"

func runStripeOrder(pass *Pass) {
	if pass.Prog == nil || pass.Info == nil {
		return // degraded load: no rank table or no resolution
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			marked := hasStripeOrderDirective(fd.Doc)
			cross := reportStripeLoops(pass, fd, marked)
			if marked && !cross {
				pass.Reportf(fd.Pos(), "stale //madeusvet:stripeorder: %s performs no cross-stripe acquisition; delete the directive", fd.Name.Name)
			}
		}
	}
}

func hasStripeOrderDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == stripeOrderDirective {
			return true
		}
	}
	return false
}

// reportStripeLoops walks fn's body, flags undisciplined cross-stripe
// sections, and reports whether any cross-stripe section (flagged or not)
// exists — the staleness signal for the directive.
func reportStripeLoops(pass *Pass, fd *ast.FuncDecl, marked bool) (cross bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		var body *ast.BlockStmt
		ascending := false
		switch loop := n.(type) {
		case *ast.FuncLit:
			return false // a literal runs elsewhere; analyzed via its own enclosing decl walk only
		case *ast.RangeStmt:
			body = loop.Body
			ascending = true // range over a slice visits indices in order
		case *ast.ForStmt:
			body = loop.Body
			ascending = forAscends(loop)
		default:
			return true
		}
		for _, acq := range stripeAcquisitions(pass, body) {
			cross = true
			switch {
			case !marked:
				pass.Reportf(acq.pos, "cross-stripe section: %s (striped lock) acquired across loop iterations; annotate the function //madeusvet:stripeorder and walk stripes in ascending index order", acq.rank.Name)
			case !ascending:
				pass.Reportf(acq.pos, "cross-stripe section over %s must walk stripes in ascending index order (range loop or increment post-statement)", acq.rank.Name)
			}
		}
		return true // nested loops are visited as loops in their own right
	}
	ast.Inspect(fd.Body, walk)
	return cross
}

// forAscends reports whether a for loop visibly ascends: its post
// statement increments the induction variable.
func forAscends(loop *ast.ForStmt) bool {
	post, ok := loop.Post.(*ast.IncDecStmt)
	return ok && post.Tok == token.INC
}

type stripeAcq struct {
	pos  token.Pos
	rank LockRank
}

// stripeAcquisitions returns the striped-lock Lock/RLock calls directly
// inside body (not in nested loops or func literals) that have no
// matching release in the same body — i.e. acquisitions that accumulate
// across iterations.
func stripeAcquisitions(pass *Pass, body *ast.BlockStmt) []stripeAcq {
	var acqs []stripeAcq
	released := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := stripedLockObj(pass, sel.X)
			if obj == nil {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				rank, _ := pass.Prog.Ranks.Rank(obj)
				acqs = append(acqs, stripeAcq{pos: n.Pos(), rank: rank})
			case "Unlock", "RUnlock":
				released[obj] = true
			}
		}
		return true
	})
	held := acqs[:0]
	for _, a := range acqs {
		rankObj := a.rank.Obj
		if rankObj != nil && released[rankObj] {
			continue // per-stripe sweep: released within the iteration
		}
		held = append(held, a)
	}
	return held
}

// stripedLockObj resolves a mutex expression and returns its declaration
// object when it carries a striped lockrank annotation.
func stripedLockObj(pass *Pass, e ast.Expr) types.Object {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[e]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = pass.Info.Uses[e.Sel]
		}
	case *ast.ParenExpr:
		return stripedLockObj(pass, e.X)
	case *ast.StarExpr:
		return stripedLockObj(pass, e.X)
	}
	if obj == nil {
		return nil
	}
	if rank, ok := pass.Prog.Ranks.Rank(obj); !ok || !rank.Striped {
		return nil
	}
	return obj
}
