package cluster

import (
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/testutil"
)

func TestNodeLifecycle(t *testing.T) {
	testutil.CheckGoroutines(t)
	n, err := NewNode("n0", NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Engine.CreateDatabase("a"); err != nil {
		t.Fatal(err)
	}
	c, err := n.Connect("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 0 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestClusterAddAndLookup(t *testing.T) {
	testutil.CheckGoroutines(t)
	cl := New()
	defer cl.Close()
	if _, err := cl.AddNode("node0", NodeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddNode("node1", NodeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddNode("node0", NodeOptions{}); err == nil {
		t.Error("duplicate node: want error")
	}
	if _, ok := cl.Node("node1"); !ok {
		t.Error("node1 missing")
	}
	if _, ok := cl.Node("nope"); ok {
		t.Error("phantom node")
	}
	names := cl.Names()
	if len(names) != 2 || names[0] != "node0" || names[1] != "node1" {
		t.Errorf("Names = %v", names)
	}
}

func TestClusterCloseShutsNodes(t *testing.T) {
	testutil.CheckGoroutines(t)
	cl := New()
	n, err := cl.AddNode("n", NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Engine.CreateDatabase("a"); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := n.Connect("a"); err == nil {
		t.Error("connect after close: want error")
	}
	if len(cl.Names()) != 0 {
		t.Error("nodes remain after Close")
	}
}

func TestNodeRTTApplied(t *testing.T) {
	testutil.CheckGoroutines(t)
	n, err := NewNode("slow", NodeOptions{RTT: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if got := n.RTT(); got != 4*time.Millisecond {
		t.Errorf("RTT = %v", got)
	}
	if err := n.Engine.CreateDatabase("a"); err != nil {
		t.Fatal(err)
	}
	c, err := n.Connect("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := c.Exec("SELECT COUNT(*) FROM t"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 12*time.Millisecond {
		t.Errorf("3 ops with 4ms RTT took %v", elapsed)
	}
}

func TestTwoNodesIndependentState(t *testing.T) {
	testutil.CheckGoroutines(t)
	cl := New()
	defer cl.Close()
	n0, _ := cl.AddNode("n0", NodeOptions{})
	n1, _ := cl.AddNode("n1", NodeOptions{})
	if err := n0.Engine.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	if err := n1.Engine.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	c0, _ := n0.Connect("tenant")
	defer c0.Close()
	c1, _ := n1.Connect("tenant")
	defer c1.Close()
	if _, err := c0.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// n1 has no table t at all.
	if _, err := c1.Exec("SELECT COUNT(*) FROM t"); err == nil {
		t.Error("n1 unexpectedly has n0's table")
	}
}

func TestSharedWALAcrossTenants(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Two tenants on one node share the engine's WAL: fsyncs accrue on
	// the same log (the shared process model).
	n, err := NewNode("n", NodeOptions{Engine: engine.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for _, db := range []string{"a", "b"} {
		if err := n.Engine.CreateDatabase(db); err != nil {
			t.Fatal(err)
		}
		c, err := n.Connect(db)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if st := n.Engine.WALStats(); st.Commits < 2 {
		t.Errorf("shared WAL commits = %d, want >= 2", st.Commits)
	}
}
