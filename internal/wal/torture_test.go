package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendWorkload runs a seeded random transaction mix against l (serial
// commit: every Commit flushes, so each commit record's frame end is a
// durability boundary) and returns the records in append order. Record i has
// LSN i+1 on a fresh log.
func appendWorkload(t *testing.T, l *Log, rng *rand.Rand, txns int) []Record {
	t.Helper()
	var recs []Record
	put := func(rec Record) {
		l.Append(rec)
		recs = append(recs, rec)
	}
	for i := 0; i < txns; i++ {
		txn := uint64(i + 1)
		if rng.Intn(100) < 15 {
			put(Record{Kind: RecDDL, DB: "db", Data: fmt.Sprintf("DDL %d", txn)})
		}
		writes := rng.Intn(4)
		for j := 0; j < writes; j++ {
			kind := []RecordKind{RecInsert, RecUpdate, RecDelete}[rng.Intn(3)]
			put(Record{TxnID: txn, Kind: kind, DB: "db", Table: "t",
				Data: fmt.Sprintf("STMT %d.%d", txn, j)})
		}
		switch outcome := rng.Intn(100); {
		case outcome < 70:
			put(Record{TxnID: txn, Kind: RecCommit})
			if err := l.Commit(); err != nil {
				t.Fatalf("commit txn %d: %v", txn, err)
			}
		case outcome < 85:
			put(Record{TxnID: txn, Kind: RecAbort})
		default:
			// Left open: no durable outcome record. Replay must drop it.
		}
	}
	return recs
}

// unitKey serializes a redo unit for oracle comparison.
func unitKey(u Unit) string {
	return fmt.Sprintf("%d/%d/%d/%s/%s", u.LSN, u.TxnID, u.Kind, u.DB, strings.Join(u.Stmts, ";"))
}

// committedPrefix is the oracle: the redo units that the first k appended
// records commit, computed from the test's own append list (not from the
// file), with LSNs derived from append position. It mirrors the WAL
// contract — a transaction is redone iff its commit record is in the prefix,
// DDL is redone at its own LSN — without sharing Replay's bookkeeping.
func committedPrefix(recs []Record, k int) []string {
	type openTxn struct {
		db    string
		stmts []string
	}
	open := make(map[uint64]*openTxn)
	var out []string
	for i, rec := range recs[:k] {
		lsn := uint64(i + 1)
		switch rec.Kind {
		case RecInsert, RecUpdate, RecDelete:
			o := open[rec.TxnID]
			if o == nil {
				o = &openTxn{db: rec.DB}
				open[rec.TxnID] = o
			}
			o.stmts = append(o.stmts, rec.Data)
		case RecAbort:
			delete(open, rec.TxnID)
		case RecCommit:
			o := open[rec.TxnID]
			delete(open, rec.TxnID)
			if o != nil {
				out = append(out, unitKey(Unit{LSN: lsn, TxnID: rec.TxnID, DB: o.db,
					Kind: RecCommit, Stmts: o.stmts}))
			}
		case RecDDL:
			out = append(out, unitKey(Unit{LSN: lsn, TxnID: rec.TxnID, DB: rec.DB,
				Kind: RecDDL, Stmts: []string{rec.Data}}))
		}
	}
	return out
}

// replayUnits opens the log at dir and replays it, returning the serialized
// units and the reopened log.
func replayUnits(t *testing.T, dir string) ([]string, *Log) {
	t.Helper()
	l, err := Open(Options{Mode: SerialCommit, Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var units []string
	if _, err := l.Replay(func(u Unit) error {
		units = append(units, unitKey(u))
		return nil
	}); err != nil {
		l.Close()
		t.Fatalf("replay: %v", err)
	}
	return units, l
}

// TestCrashTortureEveryBoundary is the crash-torture sweep: a seeded random
// workload is appended to a durable log, then for EVERY frame boundary and
// for torn offsets inside every frame (first byte of the header, the middle
// of the frame, one byte short of complete) the file is truncated to that
// byte prefix — simulating a kill -9 whose last write stopped there — and
// reopened. Recovery must (a) truncate the torn tail, (b) replay exactly the
// committed-prefix oracle, and (c) continue the LSN sequence. Seeds are in
// the subtest names, so a failure is replayable verbatim.
func TestCrashTortureEveryBoundary(t *testing.T) {
	for _, seed := range []int64{1, 42, 20150831} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			tortureSweep(t, seed)
		})
	}
}

func tortureSweep(t *testing.T, seed int64) {
	dir := t.TempDir()
	l, err := Open(Options{Mode: SerialCommit, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	recs := appendWorkload(t, l, rng, 30)
	l.Close() // graceful: flushes aborts/open-txn tails so every frame is on disk

	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}

	// Frame offsets, from a raw scan of the closed file.
	var ends []int64
	f, err := os.Open(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	_, torn, err := scanRecords(f, func(rec Record, end int64) error {
		ends = append(ends, end)
		return nil
	})
	f.Close()
	if err != nil || torn {
		t.Fatalf("scan of closed log: torn=%v err=%v", torn, err)
	}
	if len(ends) != len(recs) {
		t.Fatalf("file holds %d records, appended %d", len(ends), len(recs))
	}

	// Crash points: every frame boundary plus torn offsets within each frame.
	points := map[int64]bool{0: true}
	var start int64
	for _, end := range ends {
		points[end] = true
		if start+1 < end {
			points[start+1] = true        // torn header
			points[(start+end)/2] = true  // torn mid-frame
			points[end-1] = true          // one byte short: torn final record
		}
		start = end
	}
	t.Logf("seed=%d: %d records, %d bytes, %d crash points", seed, len(recs), len(data), len(points))

	for p := range points {
		p := p
		// validEnd is where Open must truncate to: the last whole frame at
		// or before the crash point.
		validEnd, frames := int64(0), 0
		for i, end := range ends {
			if end <= p {
				validEnd, frames = end, i+1
			}
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, segmentName(1)), data[:p], 0o644); err != nil {
			t.Fatal(err)
		}
		units, l2 := replayUnits(t, crashDir)
		want := committedPrefix(recs, frames)
		if got := strings.Join(units, "\n"); got != strings.Join(want, "\n") {
			l2.Close()
			t.Fatalf("crash at byte %d (valid end %d, %d frames):\nreplayed:\n%s\nwant:\n%s",
				p, validEnd, frames, got, strings.Join(want, "\n"))
		}
		fi, err := os.Stat(filepath.Join(crashDir, segmentName(1)))
		if err != nil {
			l2.Close()
			t.Fatal(err)
		}
		if fi.Size() != validEnd {
			l2.Close()
			t.Fatalf("crash at byte %d: file size %d after open, want truncated to %d",
				p, fi.Size(), validEnd)
		}
		// The LSN sequence continues past the surviving prefix: record
		// frames[0..frames) carried LSNs 1..frames.
		if got := l2.LastLSN(); got != uint64(frames) {
			l2.Close()
			t.Fatalf("crash at byte %d: LastLSN %d after open, want %d", p, got, frames)
		}
		l2.Append(Record{TxnID: 999, Kind: RecInsert, DB: "db", Data: "post-crash"})
		if got := l2.LastLSN(); got != uint64(frames)+1 {
			l2.Close()
			t.Fatalf("crash at byte %d: LSN after post-crash append = %d, want %d", p, got, frames+1)
		}
		l2.Close()
	}
}

// TestCrashTortureMultiSegment crashes a rotated log (unsynced tail dropped,
// exactly kill -9) and checks replay stitches the segments into one LSN
// sequence with only the durable committed prefix surviving.
func TestCrashTortureMultiSegment(t *testing.T) {
	const seed = 7
	dir := t.TempDir()
	l, err := Open(Options{Mode: SerialCommit, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	recs := appendWorkload(t, l, rng, 12)
	if _, _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	rotateIdx := len(recs) // Rotate flushed: everything before it is durable
	recs = append(recs, appendWorkload(t, l, rng, 12)...)

	// An unresolved tail past the last fsync: a commit-less transaction's
	// writes plus a dangling abort, all still in the buffer when the power
	// goes out.
	l.Append(Record{TxnID: 9999, Kind: RecInsert, DB: "db", Table: "t", Data: "lost"})
	l.Crash()

	// The durable prefix ends at the last flush — the later of the rotation
	// (which flushes) and the last commit record. Aborts and open-txn writes
	// buffered after it are gone.
	durable := rotateIdx
	for i, rec := range recs {
		if rec.Kind == RecCommit {
			durable = i + 1
		}
	}
	units, l2 := replayUnits(t, dir)
	defer l2.Close()
	want := committedPrefix(recs, durable)
	if got := strings.Join(units, "\n"); got != strings.Join(want, "\n") {
		t.Fatalf("multi-segment replay:\ngot:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments after rotate = %v, want 2", segs)
	}
}
