package engine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"madeus/internal/mvcc"
	"madeus/internal/wal"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Options{LockTimeout: time.Second})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("shop"); err != nil {
		t.Fatal(err)
	}
	return e
}

func newShopSession(t *testing.T) *Session {
	t.Helper()
	e := newTestEngine(t)
	s, err := e.NewSession("shop")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "CREATE TABLE items (id INT PRIMARY KEY, title TEXT, cost FLOAT, stock INT)")
	return s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestCreateDropDatabase(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if err := e.CreateDatabase("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateDatabase("a"); err == nil {
		t.Error("duplicate database: want error")
	}
	if err := e.CreateDatabase(""); err == nil {
		t.Error("empty name: want error")
	}
	if got := e.Databases(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Databases = %v", got)
	}
	if err := e.DropDatabase("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropDatabase("a"); err == nil {
		t.Error("drop missing: want error")
	}
	if _, err := e.NewSession("a"); err == nil {
		t.Error("session on dropped db: want error")
	}
}

func TestAutocommitInsertSelect(t *testing.T) {
	s := newShopSession(t)
	res := mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'book', 9.5, 10), (2, 'pen', 1.25, 100)")
	if res.Affected != 2 {
		t.Errorf("Affected = %d", res.Affected)
	}
	res = mustExec(t, s, "SELECT id, title FROM items WHERE cost < 5")
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "pen" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Tag != "SELECT 1" {
		t.Errorf("Tag = %q", res.Tag)
	}
}

func TestSelectStarOrderLimit(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'c', 3, 1), (2, 'a', 1, 1), (3, 'b', 2, 1)")
	res := mustExec(t, s, "SELECT * FROM items ORDER BY title DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][1].Str != "c" || res.Rows[1][1].Str != "b" {
		t.Errorf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 4 {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestAggregates(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1.5, 10), (2, 'b', 2.5, 20)")
	res := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT SUM(stock) FROM items")
	if res.Rows[0][0].Int != 30 {
		t.Errorf("sum int = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT SUM(cost) FROM items")
	if res.Rows[0][0].Float != 4.0 {
		t.Errorf("sum float = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM items WHERE cost > 2")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("filtered count = %v", res.Rows[0][0])
	}
}

func TestUpdateWithExpression(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 2, 10)")
	res := mustExec(t, s, "UPDATE items SET stock = stock - 3, cost = cost * 2 WHERE id = 1")
	if res.Affected != 1 {
		t.Errorf("Affected = %d", res.Affected)
	}
	got := mustExec(t, s, "SELECT stock, cost FROM items WHERE id = 1")
	if got.Rows[0][0].Int != 7 || got.Rows[0][1].Float != 4 {
		t.Errorf("rows = %v", got.Rows)
	}
}

func TestDelete(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1), (2, 'b', 2, 2)")
	res := mustExec(t, s, "DELETE FROM items WHERE id = 1")
	if res.Affected != 1 {
		t.Errorf("Affected = %d", res.Affected)
	}
	got := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if got.Rows[0][0].Int != 1 {
		t.Errorf("count after delete = %v", got.Rows[0][0])
	}
}

func TestExplicitTransactionCommit(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "BEGIN")
	if !s.InTxn() {
		t.Error("InTxn false after BEGIN")
	}
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	mustExec(t, s, "COMMIT")
	if s.InTxn() {
		t.Error("InTxn true after COMMIT")
	}
	got := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if got.Rows[0][0].Int != 1 {
		t.Error("committed insert missing")
	}
}

func TestExplicitTransactionRollback(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	mustExec(t, s, "ROLLBACK")
	got := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if got.Rows[0][0].Int != 0 {
		t.Error("rolled-back insert visible")
	}
}

func TestFailedStatementPoisonsTransaction(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	if _, err := s.Exec("SELECT * FROM nosuch"); err == nil {
		t.Fatal("want error for missing table")
	}
	if _, err := s.Exec("SELECT * FROM items"); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("got %v, want ErrTxnAborted", err)
	}
	// COMMIT of a failed txn rolls back.
	res := mustExec(t, s, "COMMIT")
	if res.Tag != "ROLLBACK" {
		t.Errorf("Tag = %q, want ROLLBACK", res.Tag)
	}
	got := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if got.Rows[0][0].Int != 0 {
		t.Error("poisoned txn effects visible")
	}
}

func TestTransactionControlErrors(t *testing.T) {
	s := newShopSession(t)
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Error("COMMIT outside txn: want error")
	}
	if _, err := s.Exec("ROLLBACK"); err == nil {
		t.Error("ROLLBACK outside txn: want error")
	}
	mustExec(t, s, "BEGIN")
	if _, err := s.Exec("BEGIN"); err == nil {
		t.Error("nested BEGIN: want error")
	}
	mustExec(t, s, "COMMIT") // empty txn commits fine
}

func TestSnapshotTakenAtFirstStatementNotBegin(t *testing.T) {
	e := newTestEngine(t)
	s1, _ := e.NewSession("shop")
	s2, _ := e.NewSession("shop")
	mustExec(t, s1, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s1, "INSERT INTO t (id, v) VALUES (1, 0)")

	// s2 opens a txn block but issues no statement yet.
	mustExec(t, s2, "BEGIN")
	// s1 commits a change AFTER s2's BEGIN but BEFORE s2's first read.
	mustExec(t, s1, "UPDATE t SET v = 99 WHERE id = 1")
	// s2's first read must see the change: snapshot at first operation.
	res := mustExec(t, s2, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 99 {
		t.Errorf("got v=%v; snapshot was taken at BEGIN, want at first statement", res.Rows[0][0])
	}
	mustExec(t, s2, "COMMIT")
}

func TestSnapshotIsolationAcrossSessions(t *testing.T) {
	e := newTestEngine(t)
	s1, _ := e.NewSession("shop")
	s2, _ := e.NewSession("shop")
	mustExec(t, s1, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s1, "INSERT INTO t (id, v) VALUES (1, 1)")

	mustExec(t, s2, "BEGIN")
	res := mustExec(t, s2, "SELECT v FROM t WHERE id = 1") // snapshot here
	if res.Rows[0][0].Int != 1 {
		t.Fatal("setup")
	}
	mustExec(t, s1, "UPDATE t SET v = 2 WHERE id = 1")
	// s2 still sees v=1.
	res = mustExec(t, s2, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("snapshot leak: v=%v", res.Rows[0][0])
	}
	mustExec(t, s2, "COMMIT")
	res = mustExec(t, s2, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 2 {
		t.Errorf("after commit: v=%v", res.Rows[0][0])
	}
}

func TestFirstUpdaterWinsThroughSQL(t *testing.T) {
	e := newTestEngine(t)
	s1, _ := e.NewSession("shop")
	s2, _ := e.NewSession("shop")
	mustExec(t, s1, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s1, "INSERT INTO t (id, v) VALUES (1, 1)")

	mustExec(t, s1, "BEGIN")
	mustExec(t, s2, "BEGIN")
	mustExec(t, s1, "SELECT v FROM t WHERE id = 1")
	mustExec(t, s2, "SELECT v FROM t WHERE id = 1")
	mustExec(t, s1, "UPDATE t SET v = 10 WHERE id = 1")
	mustExec(t, s1, "COMMIT")
	_, err := s2.Exec("UPDATE t SET v = 20 WHERE id = 1")
	if !errors.Is(err, mvcc.ErrSerialization) {
		t.Fatalf("got %v, want ErrSerialization", err)
	}
	mustExec(t, s2, "ROLLBACK")
	res := mustExec(t, s1, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 10 {
		t.Errorf("v = %v, want 10", res.Rows[0][0])
	}
}

func TestReadOnlyCommitSkipsWAL(t *testing.T) {
	e := New(Options{WAL: wal.Options{Mode: wal.SerialCommit}})
	defer e.Close()
	if err := e.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	s, _ := e.NewSession("d")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t (id) VALUES (1)")
	before := e.WALStats().Fsyncs
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "SELECT * FROM t")
	mustExec(t, s, "COMMIT")
	if got := e.WALStats().Fsyncs; got != before {
		t.Errorf("read-only commit fsynced: %d -> %d", before, got)
	}
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO t (id) VALUES (2)")
	mustExec(t, s, "COMMIT")
	if got := e.WALStats().Fsyncs; got != before+1 {
		t.Errorf("update commit fsyncs = %d, want %d", got, before+1)
	}
}

func TestMetaCommands(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if err := e.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	s, _ := e.NewSession("d")
	res := mustExec(t, s, "CREATE DATABASE other")
	if res.Tag != "CREATE DATABASE" {
		t.Errorf("Tag = %q", res.Tag)
	}
	if _, ok := e.Database("other"); !ok {
		t.Error("other not created")
	}
	mustExec(t, s, "DROP DATABASE other")
	if _, ok := e.Database("other"); ok {
		t.Error("other not dropped")
	}
	if _, err := s.Exec("CREATE DATABASE"); err == nil {
		t.Error("want usage error")
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	src, _ := e.NewSession("shop")
	mustExec(t, src, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, w FLOAT)")
	mustExec(t, src, "INSERT INTO t (id, name, w) VALUES (2, 'b''q', 2.5), (1, 'a', 1.5), (3, NULL, NULL)")
	mustExec(t, src, "CREATE TABLE u (id INT PRIMARY KEY, ok BOOL)")
	mustExec(t, src, "INSERT INTO u (id, ok) VALUES (1, TRUE), (2, FALSE)")

	script, err := src.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateDatabase("copy"); err != nil {
		t.Fatal(err)
	}
	dst, _ := e.NewSession("copy")
	if err := dst.Restore(script); err != nil {
		t.Fatal(err)
	}
	eq, diff, err := StateEqual(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("restore not equal: %s", diff)
	}
	// Spot check a value survived quoting.
	res := mustExec(t, dst, "SELECT name FROM t WHERE id = 2")
	if res.Rows[0][0].Str != "b'q" {
		t.Errorf("quoted text = %q", res.Rows[0][0].Str)
	}
}

func TestDumpIsConsistentSnapshot(t *testing.T) {
	e := newTestEngine(t)
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 1)")
	script1, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE t SET v = 2 WHERE id = 1")
	script2, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	j1 := strings.Join(script1, "\n")
	j2 := strings.Join(script2, "\n")
	if !strings.Contains(j1, "(1, 1)") {
		t.Errorf("dump1 = %q", j1)
	}
	if !strings.Contains(j2, "(1, 2)") {
		t.Errorf("dump2 = %q", j2)
	}
}

func TestDumpViaMetaCommand(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	res := mustExec(t, s, "DUMP")
	if len(res.Rows) != 2 { // CREATE TABLE + one INSERT batch
		t.Fatalf("dump rows = %d: %v", len(res.Rows), res.Rows)
	}
	if !strings.HasPrefix(res.Rows[0][0].Str, "CREATE TABLE items") {
		t.Errorf("first line = %q", res.Rows[0][0].Str)
	}
}

func TestDumpBatching(t *testing.T) {
	e := New(Options{DumpBatch: 3})
	defer e.Close()
	if err := e.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	s, _ := e.NewSession("d")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t (id) VALUES (1), (2), (3), (4), (5), (6), (7)")
	script, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	// 1 CREATE + ceil(7/3)=3 INSERTs
	if len(script) != 4 {
		t.Fatalf("script lines = %d: %v", len(script), script)
	}
}

func TestRowCount(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1), (2, 'b', 2, 2)")
	n, err := s.RowCount("items")
	if err != nil || n != 2 {
		t.Errorf("RowCount = %d, %v", n, err)
	}
}

func TestExecSlotLimitsThroughput(t *testing.T) {
	// With 1 slot and 5ms per statement, 4 concurrent statements take at
	// least ~20ms: the slot semaphore serializes them. (No upper-bound
	// comparison against more slots: simulated statement cost burns CPU,
	// so extra slots only help on multi-core hosts.)
	run := func(slots int) time.Duration {
		e := New(Options{ExecSlots: slots, StmtCost: 5 * time.Millisecond})
		defer e.Close()
		if err := e.CreateDatabase("d"); err != nil {
			t.Fatal(err)
		}
		setup, _ := e.NewSession("d")
		mustExec(t, setup, "CREATE TABLE t (id INT PRIMARY KEY)")
		start := time.Now()
		done := make(chan struct{})
		for i := 0; i < 4; i++ {
			go func() {
				defer func() { done <- struct{}{} }()
				sess, _ := e.NewSession("d")
				mustExec(t, sess, "SELECT COUNT(*) FROM t")
			}()
		}
		for i := 0; i < 4; i++ {
			<-done
		}
		return time.Since(start)
	}
	serial := run(1)
	if serial < 18*time.Millisecond {
		t.Errorf("1 slot: %v, want >= ~20ms", serial)
	}
	parallel := run(4)
	if parallel < 5*time.Millisecond {
		t.Errorf("4 slots finished in %v, faster than one statement's cost", parallel)
	}
}

func TestErrorCases(t *testing.T) {
	s := newShopSession(t)
	for _, sql := range []string{
		"SELECT * FROM missing",
		"INSERT INTO missing (a) VALUES (1)",
		"UPDATE missing SET a = 1",
		"DELETE FROM missing",
		"DROP TABLE missing",
		"INSERT INTO items (nope) VALUES (1)",
		"UPDATE items SET nope = 1",
		"SELECT nope FROM items",
		"SELECT * FROM items ORDER BY nope",
		"SELECT SUM(nope) FROM items",
		"SELECT COUNT(*), id FROM items",
		"CREATE TABLE items (id INT PRIMARY KEY)", // duplicate
		"not sql at all",
	} {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("Exec(%q): want error", sql)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 0)")
	if _, err := s.Exec("SELECT * FROM items WHERE cost / stock > 1"); err == nil {
		t.Error("want division-by-zero error")
	}
}

func TestNullComparisonSelectsNothing(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, NULL, 1, 1)")
	res := mustExec(t, s, "SELECT * FROM items WHERE title = 'x'")
	if len(res.Rows) != 0 {
		t.Errorf("NULL = 'x' matched: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT * FROM items WHERE title <> 'x'")
	if len(res.Rows) != 0 {
		t.Errorf("NULL <> 'x' matched: %v", res.Rows)
	}
}

func TestSessionCloseAbortsTxn(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	s.Close()
	e := s.eng
	s2, _ := e.NewSession("shop")
	res := mustExec(t, s2, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int != 0 {
		t.Error("close did not abort txn")
	}
}

func TestPKFastPathMatchesScan(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1), (2, 'b', 2, 2), (3, 'c', 3, 3)")
	// id = 2 AND stock = 2 → fast path with residual filter match
	res := mustExec(t, s, "SELECT title FROM items WHERE id = 2 AND stock = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "b" {
		t.Errorf("rows = %v", res.Rows)
	}
	// id = 2 AND stock = 99 → fast path, residual filter rejects
	res = mustExec(t, s, "SELECT title FROM items WHERE id = 2 AND stock = 99")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	// literal on the left
	res = mustExec(t, s, "SELECT title FROM items WHERE 3 = id")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "c" {
		t.Errorf("rows = %v", res.Rows)
	}
}
