// Package degraded deliberately fails type-checking: the loader must
// record the failure and the AST-heuristic rules must still run (pinned by
// TestLoaderDegradedMode). It is not a golden fixture — no analyzer is
// named "degraded" — so the golden harness skips it.
package degraded

import "time"

// loops churns a timer per iteration; timerchurn flags this from the AST
// alone, with or without type information.
func loops(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// broken references an undefined identifier — the seeded type error.
func broken() int {
	return undefinedIdentifier
}
