package obs

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// instanceID identifies this process's default scope. Merged cross-process
// timelines deduplicate by instance, so an in-process "remote" node that
// shares the process globals is recognized and not double-counted.
var instanceID = fmt.Sprintf("p%d-%x", os.Getpid(), time.Now().UnixNano()&0xfffffff)

// Instance returns the process-wide scope identity.
func Instance() string { return instanceID }

// Scope bundles a registry and a tracer under one instance identity: the
// unit a remote scrape snapshots. The process scope wraps the package-level
// Default/Trace globals; private scopes give in-process nodes (cluster
// tests, single-binary demos) their own event ring so the cross-node
// scrape path is exercised for real.
type Scope struct {
	ID       string
	Registry *Registry
	Tracer   *Tracer
}

var processScope = &Scope{ID: instanceID, Registry: Default, Tracer: Trace}

// Process returns the scope wrapping the package-level globals.
func Process() *Scope { return processScope }

// scopeSeq uniquifies generated private-scope IDs within the process.
var scopeSeq atomic.Uint64

// NewScope builds a private scope with its own registry and tracer. An
// empty id derives a unique one from the process instance.
func NewScope(id string) *Scope {
	if id == "" {
		id = fmt.Sprintf("%s.%d", instanceID, scopeSeq.Add(1))
	}
	return &Scope{ID: id, Registry: NewRegistry(), Tracer: NewTracer(DefaultTracerCap)}
}

// RemoteSnapshot is one scope's scrape response: its identity, its clock at
// snapshot time (the skew anchor for merged timelines), the tracer's next
// sequence number (the caller's bookmark for incremental tailing), the
// metric registry, and the requested slice of the event ring.
type RemoteSnapshot struct {
	Instance string    `json:"instance"`
	Now      time.Time `json:"now"`
	NextSeq  uint64    `json:"next_seq"`
	Metrics  []Metric  `json:"metrics,omitempty"`
	Events   []Event   `json:"events,omitempty"`
}

// Snapshot builds a scrape response: events with Seq >= since (optionally
// tenant-filtered), capped at the most recent maxEvents when positive.
func (s *Scope) Snapshot(since uint64, tenant string, maxEvents int) *RemoteSnapshot {
	evs := s.Tracer.Since(since, tenant)
	if maxEvents > 0 && len(evs) > maxEvents {
		evs = evs[len(evs)-maxEvents:]
	}
	return &RemoteSnapshot{
		Instance: s.ID,
		Now:      time.Now(),
		NextSeq:  s.Tracer.Seq(),
		Metrics:  s.Registry.Snapshot(),
		Events:   evs,
	}
}

// TimelineEvent is one event in a merged cross-process timeline: the event
// itself plus which process it came from and that process's estimated
// clock offset relative to the merging process (positive = the source
// clock runs ahead).
type TimelineEvent struct {
	Source string        `json:"source"`
	Skew   time.Duration `json:"skew,omitempty"`
	Event
}

// AdjustedAt maps the event's timestamp onto the merging process's clock.
func (e TimelineEvent) AdjustedAt() time.Time { return e.At.Add(-e.Skew) }

// String renders one merged-timeline line with its source annotation.
func (e TimelineEvent) String() string {
	return fmt.Sprintf("[%s skew=%v] %s", e.Source, e.Skew.Round(time.Microsecond), e.Event.String())
}

// MergeTimeline orders events from several processes onto one clock:
// stable-sorted by skew-adjusted time, sequence numbers breaking ties
// within a source.
func MergeTimeline(evs []TimelineEvent) []TimelineEvent {
	sort.SliceStable(evs, func(i, j int) bool {
		ai, aj := evs[i].AdjustedAt(), evs[j].AdjustedAt()
		if ai.Equal(aj) {
			if evs[i].Source == evs[j].Source {
				return evs[i].Seq < evs[j].Seq
			}
			return evs[i].Source < evs[j].Source
		}
		return ai.Before(aj)
	})
	return evs
}
