// Package fsyncack exercises the fsyncack analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none. The
// package declares fsync, which activates the rule for every Commit method
// in it.
package fsyncack

import "errors"

type disk struct{ broken bool }

// fsync is the durability point whose presence activates the rule.
func (d *disk) fsync() error {
	if d.broken {
		return errors.New("io")
	}
	return nil
}

// serialLog acknowledges after the fsync — the serial-commit shape.
type serialLog struct{ d disk }

func (l *serialLog) Commit() error {
	if err := l.d.fsync(); err != nil {
		return err
	}
	return nil
}

// groupLog acknowledges after receiving the batch ack — the group-commit
// shape. The receive counts as the durability event.
type groupLog struct {
	done chan error
}

func (l *groupLog) Commit() error {
	if err := <-l.done; err != nil {
		return err
	}
	return nil
}

// brokenLog acknowledges without ever reaching a durability point.
type brokenLog struct{ pending int }

func (l *brokenLog) Commit() error {
	l.pending = 0
	return nil // want
}

// earlyAckLog has the fsync, but an early-out guard acknowledges the commit
// before reaching it — the skip path the rule exists for.
type earlyAckLog struct {
	d     disk
	empty bool
}

func (l *earlyAckLog) Commit() error {
	if l.empty {
		return nil // want
	}
	return l.d.fsync()
}

// errorOutLog returns early with an error, never claiming success; failing
// a commit without an fsync is fine.
type errorOutLog struct {
	d      disk
	closed bool
}

func (l *errorOutLog) Commit() error {
	if l.closed {
		return errors.New("log closed")
	}
	if err := l.d.fsync(); err != nil {
		return err
	}
	return nil
}

// propagateLog returns the fsync error expression directly — never a
// literal nil, so nothing to flag.
type propagateLog struct{ d disk }

func (l *propagateLog) Commit() error {
	return l.d.fsync()
}

// rollback is not named Commit; acknowledging without fsync is out of scope.
func (l *brokenLog) Rollback() error {
	l.pending = 0
	return nil
}

// suppressedLog documents a deliberate non-durable ack with the standard
// directive; the finding must be suppressed.
type suppressedLog struct{ volatile bool }

func (l *suppressedLog) Commit() error {
	if l.volatile {
		//madeusvet:ignore fsyncack fixture: deliberately volatile mode
		return nil
	}
	return errors.New("no durability point")
}
