package engine

import (
	"strings"
	"testing"
)

func TestCreateIndexAndLookup(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES "+
		"(1, 'go', 10, 1), (2, 'sql', 20, 2), (3, 'go', 30, 3)")
	mustExec(t, s, "CREATE INDEX items_title ON items (title)")

	res := mustExec(t, s, "SELECT id FROM items WHERE title = 'go'")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 1 || res.Rows[1][0].Int != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Residual predicates still apply.
	res = mustExec(t, s, "SELECT id FROM items WHERE title = 'go' AND stock > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Misses return empty.
	res = mustExec(t, s, "SELECT id FROM items WHERE title = 'rust'")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestIndexTracksWrites(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "CREATE INDEX items_title ON items (title)")
	// Insert AFTER index creation.
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	res := mustExec(t, s, "SELECT id FROM items WHERE title = 'a'")
	if len(res.Rows) != 1 {
		t.Fatalf("insert not indexed: %v", res.Rows)
	}
	// Update moves the row to a new value.
	mustExec(t, s, "UPDATE items SET title = 'b' WHERE id = 1")
	res = mustExec(t, s, "SELECT id FROM items WHERE title = 'b'")
	if len(res.Rows) != 1 {
		t.Fatalf("update not indexed: %v", res.Rows)
	}
	// The stale old-value entry must not produce the row (re-check).
	res = mustExec(t, s, "SELECT id FROM items WHERE title = 'a'")
	if len(res.Rows) != 0 {
		t.Fatalf("stale index entry leaked: %v", res.Rows)
	}
	// Delete removes it from results under the index path.
	mustExec(t, s, "DELETE FROM items WHERE id = 1")
	res = mustExec(t, s, "SELECT id FROM items WHERE title = 'b'")
	if len(res.Rows) != 0 {
		t.Fatalf("deleted row via index: %v", res.Rows)
	}
}

func TestIndexRespectsSnapshots(t *testing.T) {
	e := newTestEngine(t)
	s1, _ := e.NewSession("shop")
	s2, _ := e.NewSession("shop")
	mustExec(t, s1, "CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
	mustExec(t, s1, "CREATE INDEX t_tag ON t (tag)")
	mustExec(t, s1, "INSERT INTO t (id, tag) VALUES (1, 'old')")

	mustExec(t, s2, "BEGIN")
	res := mustExec(t, s2, "SELECT id FROM t WHERE tag = 'old'") // snapshot
	if len(res.Rows) != 1 {
		t.Fatal("setup")
	}
	mustExec(t, s1, "UPDATE t SET tag = 'new' WHERE id = 1")
	// s2's snapshot still finds the OLD value via the index...
	res = mustExec(t, s2, "SELECT id FROM t WHERE tag = 'old'")
	if len(res.Rows) != 1 {
		t.Errorf("old snapshot lost indexed row: %v", res.Rows)
	}
	// ...and must not see the new one.
	res = mustExec(t, s2, "SELECT id FROM t WHERE tag = 'new'")
	if len(res.Rows) != 0 {
		t.Errorf("snapshot leak via index: %v", res.Rows)
	}
	mustExec(t, s2, "COMMIT")
}

func TestDropIndexFallsBackToScan(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	mustExec(t, s, "CREATE INDEX ix ON items (title)")
	mustExec(t, s, "DROP INDEX ix ON items")
	res := mustExec(t, s, "SELECT id FROM items WHERE title = 'a'")
	if len(res.Rows) != 1 {
		t.Fatalf("scan fallback failed: %v", res.Rows)
	}
}

func TestIndexErrors(t *testing.T) {
	s := newShopSession(t)
	for _, sql := range []string{
		"CREATE INDEX ix ON missing (a)",
		"CREATE INDEX ix ON items (nope)",
		"DROP INDEX ix ON items",
		"DROP INDEX ix ON missing",
	} {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("%s: want error", sql)
		}
	}
	mustExec(t, s, "CREATE INDEX ix ON items (title)")
	if _, err := s.Exec("CREATE INDEX ix ON items (title)"); err == nil {
		t.Error("duplicate index: want error")
	}
}

func TestDumpIncludesIndexes(t *testing.T) {
	e := newTestEngine(t)
	src, _ := e.NewSession("shop")
	mustExec(t, src, "CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
	mustExec(t, src, "CREATE INDEX t_tag ON t (tag)")
	mustExec(t, src, "INSERT INTO t (id, tag) VALUES (1, 'x')")

	script, err := src.Dump()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(script, "\n")
	if !strings.Contains(joined, "CREATE INDEX t_tag ON t (tag)") {
		t.Fatalf("dump missing index DDL:\n%s", joined)
	}
	// Restore rebuilds the index: the restored database answers indexed
	// queries and StateEqual (which includes index DDL) holds.
	if err := e.CreateDatabase("copy"); err != nil {
		t.Fatal(err)
	}
	dst, _ := e.NewSession("copy")
	if err := dst.Restore(script); err != nil {
		t.Fatal(err)
	}
	eq, diff, err := StateEqual(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("restore differs: %s", diff)
	}
	res := mustExec(t, dst, "SELECT id FROM t WHERE tag = 'x'")
	if len(res.Rows) != 1 {
		t.Fatalf("restored index unusable: %v", res.Rows)
	}
}

func TestVacuumSweepsStaleIndexEntries(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "CREATE INDEX items_title ON items (title)")
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 1)")
	for _, title := range []string{"b", "c", "d"} {
		mustExec(t, s, "UPDATE items SET title = '"+title+"' WHERE id = 1")
	}
	mustExec(t, s, "VACUUM")
	// Old values are swept; current remains reachable.
	for _, title := range []string{"a", "b", "c"} {
		res := mustExec(t, s, "SELECT id FROM items WHERE title = '"+title+"'")
		if len(res.Rows) != 0 {
			t.Errorf("title %q still matches after vacuum", title)
		}
	}
	res := mustExec(t, s, "SELECT id FROM items WHERE title = 'd'")
	if len(res.Rows) != 1 {
		t.Errorf("current value lost: %v", res.Rows)
	}
}
