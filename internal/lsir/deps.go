package lsir

// DepKind is one of the paper's dependency kinds (Definition 1).
type DepKind int

// Dependency kinds. RR dependencies are excluded by definition ("two read
// operations have no impact on the results", Sec 2.2).
const (
	DepWR DepKind = iota
	DepRW
	DepWW
)

func (k DepKind) String() string {
	switch k {
	case DepWR:
		return "wr"
	case DepRW:
		return "rw"
	case DepWW:
		return "ww"
	}
	return "?"
}

// Dep is one dependency between two operations of a history, identified by
// their indexes. Intra reports whether both operations belong to the same
// transaction (Sec 2.2's intra/inter split).
type Dep struct {
	Kind     DepKind
	Intra    bool
	From, To int // indexes into History.Ops, From < To in history order
}

// Dependencies computes all wr-, rw-, and ww-dependencies of a history over
// committed transactions, following Definition 1:
//
//   - wr: op From writes version x_i and op To later reads that version.
//   - rw: op From reads version x_k and op To writes the immediate
//     successor version of x after x_k.
//   - ww: op From writes x_i and op To writes the immediate successor.
//
// Version order per item is the order of committed writes in the history
// (aborted writes never become versions; under first-updater-wins they
// cannot be read by others).
func Dependencies(h History) []Dep {
	txns := h.Txns()
	committed := func(id int) bool {
		ti := txns[id]
		return ti != nil && ti.Committed
	}

	// Per-item committed write sequence (indexes into Ops), which defines
	// the version order and hence "immediate successor".
	writes := make(map[string][]int)
	for i, op := range h.Ops {
		if op.Kind == OpWrite && committed(op.Txn) {
			writes[op.Item] = append(writes[op.Item], i)
		}
	}
	// successorOf[item][version] = op index of the write creating the
	// immediate successor version of `version`, if any. A version here is
	// a writer transaction id; version 0 is the initial version.
	type itemVer struct {
		item string
		ver  int
	}
	successor := make(map[itemVer]int)
	for item, ws := range writes {
		prev := 0
		for _, wi := range ws {
			// Skip same-transaction rewrites for version numbering:
			// each committed write op creates a new physical write,
			// but the "version x_i" is per transaction. The
			// immediate successor of version prev is this write if
			// it belongs to a different transaction.
			w := h.Ops[wi]
			if w.Txn == prev {
				// Intra-transaction rewrite of its own version:
				// version id unchanged, but it is still the
				// successor of the version before it for ww
				// ordering purposes within the transaction.
				successor[itemVer{item, prev}] = wi
				continue
			}
			if _, seen := successor[itemVer{item, prev}]; !seen {
				successor[itemVer{item, prev}] = wi
			}
			prev = w.Txn
		}
	}

	var deps []Dep
	// wr and rw stem from reads.
	for i, op := range h.Ops {
		if op.Kind != OpRead || !committed(op.Txn) {
			continue
		}
		// wr: the write that created the version this read observed.
		if op.ReadVer != 0 && committed(op.ReadVer) {
			for j := i - 1; j >= 0; j-- {
				w := h.Ops[j]
				if w.Kind == OpWrite && w.Item == op.Item && w.Txn == op.ReadVer {
					deps = append(deps, Dep{Kind: DepWR, Intra: w.Txn == op.Txn, From: j, To: i})
					break
				}
			}
		}
		// rw: the write creating the immediate successor of the version
		// read.
		if wi, ok := successor[itemVer{op.Item, op.ReadVer}]; ok && wi > i {
			deps = append(deps, Dep{Kind: DepRW, Intra: h.Ops[wi].Txn == op.Txn, From: i, To: wi})
		}
	}
	// ww: consecutive committed writes per item.
	for item, ws := range writes {
		_ = item
		for k := 0; k+1 < len(ws); k++ {
			from, to := ws[k], ws[k+1]
			deps = append(deps, Dep{
				Kind:  DepWW,
				Intra: h.Ops[from].Txn == h.Ops[to].Txn,
				From:  from,
				To:    to,
			})
		}
	}
	return deps
}

// FilterDeps selects dependencies by kind and intra/inter.
func FilterDeps(deps []Dep, kind DepKind, intra bool) []Dep {
	var out []Dep
	for _, d := range deps {
		if d.Kind == kind && d.Intra == intra {
			out = append(out, d)
		}
	}
	return out
}
